//! Work-stealing morsel pool for chunk-parallel scans.
//!
//! A **morsel** is one independent unit of scan work — in detection, one
//! (variable CFD × column chunk) pair; in the cluster's scatter, one
//! shard export; in repair, one candidate-cost evaluation stripe. The
//! pool runs `n` morsels over `workers` scoped threads with striped
//! work-stealing: each worker owns a contiguous stripe of morsel indexes
//! and claims them by a `fetch_add` on its stripe cursor; a worker whose
//! stripe drains steals from the other stripes by the *same* `fetch_add`
//! protocol, so every index is claimed exactly once without a lock or a
//! deque. Results come back positionally, so callers can merge partial
//! states in deterministic (chunk) order regardless of which worker ran
//! which morsel.
//!
//! Worker counts resolve through [`resolve_threads`]: explicit
//! configuration (`ServerConfig` / builder) beats the
//! `SDQ_DETECT_THREADS` environment variable beats the machine's
//! available parallelism. `1` means strictly serial on the caller's
//! thread — no pool, no spawn, bit-identical to the pre-pool code path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Pool telemetry: morsels dispatched, per-morsel wall time, workers of
/// the most recent run, and how many morsels were claimed by stealing.
struct MorselObs {
    morsels: Arc<obs::Counter>,
    steals: Arc<obs::Counter>,
    workers: Arc<obs::Gauge>,
    morsel_ns: Arc<obs::Histogram>,
}

fn morsel_obs() -> &'static MorselObs {
    static OBS: OnceLock<MorselObs> = OnceLock::new();
    OBS.get_or_init(|| MorselObs {
        morsels: obs::counter("detect_morsels_total"),
        steals: obs::counter("detect_morsel_steals_total"),
        workers: obs::gauge("detect_workers"),
        morsel_ns: obs::histogram("detect_morsel_ns"),
    })
}

/// Resolve the worker count for a morsel run: an explicit configuration
/// wins, then a positive `SDQ_DETECT_THREADS`, then the machine's
/// available parallelism (the environment variable is read once per
/// process). Never returns 0.
pub fn resolve_threads(configured: Option<usize>) -> usize {
    if let Some(t) = configured {
        return t.max(1);
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    let env = *ENV.get_or_init(|| obs::env::positive("SDQ_DETECT_THREADS"));
    env.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// Run morsels `0..n` through `f` over at most `workers` threads and
/// return the results positionally (`out[i] = f(i)`; every slot is
/// `Some` — the `Option` exists so callers can scatter without `T:
/// Default`). `workers <= 1` or `n <= 1` runs serially on the caller's
/// thread.
pub fn run_morsels<T, F>(workers: usize, n: usize, f: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let o = morsel_obs();
    o.morsels.add(n as u64);
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    o.workers.set(workers as i64);
    let timed = |i: usize| {
        let t0 = std::time::Instant::now();
        let out = f(i);
        o.morsel_ns.record(t0.elapsed().as_nanos() as u64);
        out
    };
    if workers == 1 {
        return (0..n).map(|i| Some(timed(i))).collect();
    }
    // Captured once on the dispatching thread: every pool worker installs
    // the same trace position, so spans opened inside morsels parent
    // under the caller's open span. This one seam propagates request
    // traces across every fan-out in the system — threaded detection,
    // the cluster scatter, and the repair candidate scans all ride this
    // pool. The serial path above needs nothing: it runs on the caller's
    // thread where the trace is already installed.
    let trace_ctx = obs::trace::current();

    // Striped indexes: worker `w` owns `stripes[w].0 .. stripes[w].1`.
    let stripes: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * n / workers, (w + 1) * n / workers))
        .collect();
    let cursors: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
    let mut out: Vec<Option<T>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let produced: Vec<Vec<(usize, T)>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let stripes = &stripes;
                let cursors = &cursors;
                let timed = &timed;
                let trace_ctx = &trace_ctx;
                s.spawn(move |_| {
                    let _trace = obs::trace::install(trace_ctx.as_ref());
                    let mut got: Vec<(usize, T)> = Vec::new();
                    // Drain the own stripe first, then sweep the victims.
                    // A cursor racing past its stripe end is harmless —
                    // each claim either lands a unique in-range index or
                    // terminates the sweep over that stripe.
                    for v in (w..workers).chain(0..w) {
                        let (start, end) = stripes[v];
                        loop {
                            let i = start + cursors[v].fetch_add(1, Ordering::Relaxed);
                            if i >= end {
                                break;
                            }
                            if v != w {
                                morsel_obs().steals.inc();
                            }
                            got.push((i, timed(i)));
                        }
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker does not panic"))
            .collect::<Vec<_>>()
    })
    .expect("morsel pool does not panic");
    for batch in produced {
        for (i, t) in batch {
            out[i] = Some(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_positional_and_complete() {
        for workers in [1usize, 2, 3, 8] {
            for n in [0usize, 1, 2, 7, 64] {
                let out = run_morsels(workers, n, |i| i * i);
                assert_eq!(out.len(), n);
                for (i, slot) in out.iter().enumerate() {
                    assert_eq!(*slot, Some(i * i), "workers={workers} n={n}");
                }
            }
        }
    }

    #[test]
    fn pool_runs_work_concurrently_against_shared_state() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        let out = run_morsels(4, 100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
            i
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        assert_eq!(out.iter().flatten().count(), 100);
    }

    #[test]
    fn morsel_counter_tracks_dispatches() {
        let c = obs::counter("detect_morsels_total");
        let before = c.get();
        run_morsels(2, 17, |i| i);
        assert_eq!(c.get() - before, 17);
    }

    #[test]
    fn thread_resolution_prefers_explicit_config() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "0 clamps to serial");
        assert!(resolve_threads(None) >= 1);
    }
}
