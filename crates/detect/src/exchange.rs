//! Cross-shard partial-aggregation exchange for scatter/gather detection.
//!
//! Semandaq's detection semantics partition cleanly across shards:
//! **constant CFDs** are per-row predicates, so every single-tuple
//! violation is decided entirely shard-local; **variable CFDs** only
//! conflict *within* an LHS group, so a shard can summarize each of its
//! groups into a compact partial state and a coordinator can merge the
//! per-shard partials into exactly the groups a single-node scan over the
//! union would have built.
//!
//! # Wire format
//!
//! The unit of exchange is one [`CfdPartial`] per CFD per shard:
//!
//! * `Constant { violating }` — the shard's single-tuple violators, as
//!   (global) row ids. Nothing to reconcile: the coordinator concatenates.
//! * `Variable { groups }` — one [`GroupPartial`] per non-empty LHS group
//!   the shard holds (violating *or clean*: a shard-locally clean group
//!   can still conflict with another shard's portion of the same group):
//!   - `key` — the decoded LHS key, in pattern order, constants included
//!     (exactly the key the report format uses);
//!   - `values` — the **distinct** non-NULL RHS values of the shard's
//!     members, each with its member count. For the typical clean group
//!     this is a single `(representative, n)` pair — the whole group in
//!     two words plus one `Arc` bump;
//!   - `members` — the group's member rows as `(row id, index into
//!     values)`. Twelve bytes per member, no `Value` per member.
//!
//! NULL-RHS rows are excluded on the shard (mirroring `COUNT(DISTINCT)`),
//! and keys/values compare across shards by `strong_eq` (through
//! [`Value`]'s `PartialEq`/`Hash`), so NULL keys group together and
//! `3 == 3.0` merges — the same semantics every single-node engine
//! implements.
//!
//! The merge ([`merge_cfd_partials`]) unions partials per key, re-mapping
//! each shard's value indices into the merged distinct-value table, and
//! materializes a violation for every merged group with ≥ 2 distinct RHS
//! values — computing each member's conflict-partner count from the merged
//! value counts, so the resulting [`ViolationReport`] carries the same
//! `vio(t)` tallies a single-node detect would have produced.

use minidb::{RowId, Value};

use crate::fxhash::FxHashMap;
use crate::violation::ViolationReport;

/// Partial state of one LHS group of a variable CFD on one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPartial {
    /// Decoded LHS key (pattern order, constants included).
    pub key: Vec<Value>,
    /// Distinct non-NULL RHS values with their shard-local member counts.
    pub values: Vec<(Value, u64)>,
    /// Members as `(row id, index into values)`.
    pub members: Vec<(RowId, u32)>,
}

/// One CFD's partial detection state on one shard.
#[derive(Debug, Clone, PartialEq)]
pub enum CfdPartial {
    /// Constant-RHS CFD: the shard's single-tuple violators (sorted).
    Constant {
        /// Violating row ids.
        violating: Vec<RowId>,
    },
    /// Variable CFD: every non-empty LHS group's partial state.
    Variable {
        /// Per-group partials, violating and clean alike.
        groups: Vec<GroupPartial>,
    },
}

impl CfdPartial {
    /// Number of groups carried (0 for constant partials).
    pub fn n_groups(&self) -> usize {
        match self {
            CfdPartial::Constant { .. } => 0,
            CfdPartial::Variable { groups } => groups.len(),
        }
    }

    /// Number of per-row entries carried (violators or group members) —
    /// the dominant term of the exchange volume.
    pub fn n_members(&self) -> usize {
        match self {
            CfdPartial::Constant { violating } => violating.len(),
            CfdPartial::Variable { groups } => groups.iter().map(|g| g.members.len()).sum(),
        }
    }
}

/// A group being merged across shards: the running distinct-value table
/// plus members re-mapped into it.
#[derive(Default)]
struct MergedGroup {
    values: Vec<(Value, u64)>,
    members: Vec<(RowId, u32)>,
}

/// A merged violating group, decoded into the report format's parts: LHS
/// key, members with their RHS values, per-member distinct-value counts.
pub type MergedDecoded = (Vec<Value>, Vec<(RowId, Value)>, Vec<u64>);

/// Union variable-CFD group partials by LHS key and return every merged
/// group holding ≥ 2 distinct non-NULL RHS values, decoded. This is the
/// gather half of both distribution axes: shards in a cluster *and*
/// chunk-morsels inside one node merge through this single function, so
/// the two execution modes cannot drift apart semantically.
pub fn merge_variable_partials<'a, I>(parts: I) -> Vec<MergedDecoded>
where
    I: IntoIterator<Item = &'a [GroupPartial]>,
{
    // Insertion-ordered group table (a plain map would randomize output
    // order between runs; normalized() would hide it, but deterministic
    // reports are worth one index map).
    let mut groups: Vec<(Vec<Value>, MergedGroup)> = Vec::new();
    let mut index: FxHashMap<Vec<Value>, usize> = FxHashMap::default();

    for gs in parts {
        for g in gs {
            let at = *index.entry(g.key.clone()).or_insert_with(|| {
                groups.push((g.key.clone(), MergedGroup::default()));
                groups.len() - 1
            });
            let merged = &mut groups[at].1;
            // Re-map this partial's value indices into the merged
            // distinct-value table (linear scan: groups disagree on a
            // handful of values; the producer already deduplicated).
            let remap: Vec<u32> = g
                .values
                .iter()
                .map(
                    |(v, n)| match merged.values.iter().position(|(u, _)| u == v) {
                        Some(i) => {
                            merged.values[i].1 += n;
                            i as u32
                        }
                        None => {
                            merged.values.push((v.clone(), *n));
                            (merged.values.len() - 1) as u32
                        }
                    },
                )
                .collect();
            merged
                .members
                .extend(g.members.iter().map(|&(r, vi)| (r, remap[vi as usize])));
        }
    }

    groups
        .into_iter()
        .filter(|(_, merged)| merged.values.len() >= 2)
        .map(|(key, merged)| {
            let rows: Vec<(RowId, Value)> = merged
                .members
                .iter()
                .map(|&(r, vi)| (r, merged.values[vi as usize].0.clone()))
                .collect();
            let own: Vec<u64> = merged
                .members
                .iter()
                .map(|&(_, vi)| merged.values[vi as usize].1)
                .collect();
            (key, rows, own)
        })
        .collect()
}

/// Merge one CFD's partials from every shard into `report`, as violation
/// records under `cfd_idx`.
///
/// The output is `normalized()`-equal to evaluating the CFD single-node
/// over the union of the shards' rows: constant violators concatenate;
/// variable groups union by key ([`merge_variable_partials`]), and a
/// merged group violates iff it holds ≥ 2 distinct non-NULL RHS values —
/// whether the disagreement sat inside one shard or only appears across
/// shards.
pub fn merge_cfd_partials<'a, I>(cfd_idx: usize, parts: I, report: &mut ViolationReport)
where
    I: IntoIterator<Item = &'a CfdPartial>,
{
    let mut singles: Vec<RowId> = Vec::new();
    let mut variable: Vec<&'a [GroupPartial]> = Vec::new();
    for part in parts {
        match part {
            CfdPartial::Constant { violating } => singles.extend(violating.iter().copied()),
            CfdPartial::Variable { groups } => variable.push(groups),
        }
    }

    singles.sort_unstable();
    for row in singles {
        report.push_single(cfd_idx, row);
    }
    for (key, rows, own) in merge_variable_partials(variable) {
        report.push_multi_prepared(cfd_idx, key, rows, &own);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partial(members: &[(u64, &str)]) -> GroupPartial {
        let mut values: Vec<(Value, u64)> = Vec::new();
        let mut ms = Vec::new();
        for &(id, v) in members {
            let v = Value::str(v);
            let vi = match values.iter().position(|(u, _)| *u == v) {
                Some(i) => {
                    values[i].1 += 1;
                    i
                }
                None => {
                    values.push((v, 1));
                    values.len() - 1
                }
            };
            ms.push((RowId(id), vi as u32));
        }
        GroupPartial {
            key: vec![Value::str("k")],
            values,
            members: ms,
        }
    }

    fn variable(groups: Vec<GroupPartial>) -> CfdPartial {
        CfdPartial::Variable { groups }
    }

    #[test]
    fn locally_clean_shards_conflict_across() {
        // Shard 0 holds {a, a}, shard 1 holds {b}: neither violates alone,
        // the union does — the cross-shard case the exchange exists for.
        let s0 = variable(vec![partial(&[(1, "a"), (2, "a")])]);
        let s1 = variable(vec![partial(&[(3, "b")])]);
        let mut report = ViolationReport::default();
        merge_cfd_partials(0, [&s0, &s1], &mut report);
        assert_eq!(report.len(), 1);
        assert_eq!(report.vio_of(RowId(1)), 1, "one conflict partner (b)");
        assert_eq!(report.vio_of(RowId(3)), 2, "two conflict partners (a, a)");
    }

    #[test]
    fn agreeing_shards_stay_clean() {
        let s0 = variable(vec![partial(&[(1, "a")])]);
        let s1 = variable(vec![partial(&[(2, "a"), (3, "a")])]);
        let mut report = ViolationReport::default();
        merge_cfd_partials(0, [&s0, &s1], &mut report);
        assert!(report.is_empty(), "single distinct value across shards");
    }

    #[test]
    fn local_conflict_survives_the_merge() {
        let s0 = variable(vec![partial(&[(1, "a"), (2, "b")])]);
        let mut report = ViolationReport::default();
        merge_cfd_partials(0, [&s0], &mut report);
        assert_eq!(report.len(), 1);
        assert_eq!(report.vio_of(RowId(1)), 1);
    }

    #[test]
    fn constant_partials_concatenate_sorted() {
        let s0 = CfdPartial::Constant {
            violating: vec![RowId(5)],
        };
        let s1 = CfdPartial::Constant {
            violating: vec![RowId(2)],
        };
        let mut report = ViolationReport::default();
        merge_cfd_partials(3, [&s0, &s1], &mut report);
        assert_eq!(report.dirty_rows(), vec![RowId(2), RowId(5)]);
        assert_eq!(report.per_cfd[&3], 2);
    }

    #[test]
    fn distinct_keys_never_merge() {
        let mut g1 = partial(&[(1, "a")]);
        g1.key = vec![Value::str("k1")];
        let mut g2 = partial(&[(2, "b")]);
        g2.key = vec![Value::str("k2")];
        let s0 = variable(vec![g1]);
        let s1 = variable(vec![g2]);
        let mut report = ViolationReport::default();
        merge_cfd_partials(0, [&s0, &s1], &mut report);
        assert!(report.is_empty(), "different groups cannot conflict");
    }

    #[test]
    fn null_keys_group_together() {
        // strong_eq semantics: an all-NULL LHS is one group across shards.
        let mut g1 = partial(&[(1, "a")]);
        g1.key = vec![Value::Null];
        let mut g2 = partial(&[(2, "b")]);
        g2.key = vec![Value::Null];
        let mut report = ViolationReport::default();
        merge_cfd_partials(0, [&variable(vec![g1]), &variable(vec![g2])], &mut report);
        assert_eq!(report.len(), 1);
    }

    #[test]
    fn exchange_volume_counters() {
        let s0 = variable(vec![partial(&[(1, "a"), (2, "a")]), partial(&[(3, "b")])]);
        assert_eq!(s0.n_groups(), 2);
        assert_eq!(s0.n_members(), 3);
        let c = CfdPartial::Constant {
            violating: vec![RowId(1), RowId(2)],
        };
        assert_eq!(c.n_groups(), 0);
        assert_eq!(c.n_members(), 2);
    }
}
