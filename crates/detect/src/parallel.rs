//! Parallel native detection: one task per CFD, merged at the end.
//!
//! Detection across CFDs is embarrassingly parallel (each CFD scans the
//! table independently); `crossbeam::scope` lets the workers borrow the
//! table without reference counting.

use cfd::{BoundCfd, Cfd, CfdResult};
use minidb::Table;
use parking_lot::Mutex;

use crate::native::detect_one;
use crate::violation::ViolationReport;

/// Detect violations of `cfds` using up to `threads` worker threads.
///
/// Equivalent to [`crate::native::detect_native`] (the property tests pin
/// this); faster when `|Σ|` and the table are large.
pub fn detect_parallel(table: &Table, cfds: &[Cfd], threads: usize) -> CfdResult<ViolationReport> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(table.schema()))
        .collect::<CfdResult<_>>()?;
    let threads = threads.max(1).min(bound.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, ViolationReport)>> = Mutex::new(Vec::new());
    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= bound.len() {
                    break;
                }
                let mut local = ViolationReport::default();
                detect_one(table, i, &bound[i], &mut local);
                results.lock().push((i, local));
            });
        }
    })
    .expect("detection workers do not panic");
    let mut parts = results.into_inner();
    parts.sort_by_key(|(i, _)| *i);
    let mut report = ViolationReport::default();
    for (_, part) in parts {
        report.merge(part);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::detect_native;
    use datagen::dirty_customers;

    #[test]
    fn parallel_equals_sequential() {
        let d = dirty_customers(250, 0.06, 9);
        let t = d.db.table("customer").unwrap();
        let seq = detect_native(t, &d.cfds).unwrap().normalized();
        for threads in [1, 2, 4, 8] {
            let par = detect_parallel(t, &d.cfds, threads).unwrap().normalized();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn handles_more_threads_than_cfds() {
        let d = dirty_customers(50, 0.05, 2);
        let t = d.db.table("customer").unwrap();
        let r = detect_parallel(t, &d.cfds, 64).unwrap();
        let s = detect_native(t, &d.cfds).unwrap();
        assert_eq!(r.normalized(), s.normalized());
    }
}
