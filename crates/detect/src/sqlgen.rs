//! SQL generation for CFD violation detection ([3] §5–6).
//!
//! For each pattern tableau (the CFDs sharing an embedded FD `X → A`) two
//! queries are generated over the data joined with the encoded tableau
//! (wildcards = NULL):
//!
//! * **QC** catches single-tuple violations: tuples matching a pattern's
//!   LHS whose RHS differs from the pattern's RHS constant;
//! * **QV** catches multi-tuple violations: per pattern row with wildcard
//!   RHS, LHS-groups holding more than one distinct RHS value.
//!
//! Both are *merged* queries — one pass covers every pattern row of the
//! tableau. The per-pattern variants (one query per CFD with constants
//! inlined) are generated for the A1 ablation.

use cfd::encode::PATTERN_ID_COLUMN;
use cfd::{Pattern, Tableau};

/// The generated detection SQL for one tableau.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionSql {
    /// Name the encoded tableau must be registered under.
    pub tableau_table: String,
    /// Single-tuple violation query (None if no constant-RHS pattern row).
    pub qc: Option<String>,
    /// Multi-tuple group query (None if no variable pattern row).
    pub qv: Option<String>,
    /// Attribution query template: joins the data back to the materialized
    /// QV result (named `{v}`) to fetch the member rows of each group.
    pub attribution: Option<String>,
}

/// Build the LHS match predicate `(tp.B IS NULL OR t.B = tp.B) AND …`.
fn match_predicate(lhs: &[String]) -> String {
    if lhs.is_empty() {
        return "1 = 1".to_string();
    }
    lhs.iter()
        .map(|a| format!("(tp.{a} IS NULL OR t.{a} = tp.{a})"))
        .collect::<Vec<_>>()
        .join(" AND ")
}

/// Generate the merged QC/QV queries for `tableau`, assuming its encoding
/// is registered as `tableau_table` and the data as `tableau.relation`.
pub fn merged_detection_sql(tableau: &Tableau, tableau_table: &str) -> DetectionSql {
    let rel = &tableau.relation;
    let lhs = &tableau.fd.lhs;
    let a = &tableau.fd.rhs;
    let on = match_predicate(lhs);
    let has_const = tableau.rows.iter().any(|(_, p, _)| !p.is_wild());
    let has_var = tableau.rows.iter().any(|(_, p, _)| p.is_wild());

    let qc = has_const.then(|| {
        format!(
            "SELECT t.__rowid AS rid, tp.{pid} AS pat \
             FROM {rel} t JOIN {tableau_table} tp ON {on} \
             WHERE tp.{a} IS NOT NULL AND t.{a} <> tp.{a}",
            pid = PATTERN_ID_COLUMN,
        )
    });

    let (qv, attribution) = if has_var {
        let key_cols: Vec<String> = lhs.iter().map(|c| format!("t.{c}")).collect();
        let select_keys = if key_cols.is_empty() {
            String::new()
        } else {
            format!(", {}", key_cols.join(", "))
        };
        let group_by = {
            let mut keys = vec![format!("tp.{PATTERN_ID_COLUMN}")];
            keys.extend(key_cols.iter().cloned());
            keys.join(", ")
        };
        let qv = format!(
            "SELECT tp.{pid} AS pat{select_keys} \
             FROM {rel} t JOIN {tableau_table} tp ON {on} \
             WHERE tp.{a} IS NULL AND t.{a} IS NOT NULL \
             GROUP BY {group_by} \
             HAVING COUNT(DISTINCT t.{a}) > 1",
            pid = PATTERN_ID_COLUMN,
        );
        let attr_on = if lhs.is_empty() {
            "1 = 1".to_string()
        } else {
            lhs.iter()
                .map(|c| format!("t.{c} IS NOT DISTINCT FROM v.{c}"))
                .collect::<Vec<_>>()
                .join(" AND ")
        };
        let key_select = if lhs.is_empty() {
            String::new()
        } else {
            format!(
                ", {}",
                lhs.iter()
                    .map(|c| format!("v.{c} AS {c}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let attribution = format!(
            "SELECT v.pat AS pat, t.__rowid AS rid, t.{a} AS rhs{key_select} \
             FROM {rel} t JOIN {{v}} v ON {attr_on} \
             WHERE t.{a} IS NOT NULL",
        );
        (Some(qv), Some(attribution))
    } else {
        (None, None)
    };

    DetectionSql {
        tableau_table: tableau_table.to_string(),
        qc,
        qv,
        attribution,
    }
}

/// Per-pattern (non-merged) queries for the A1 ablation: one `(QC | QV)`
/// pair of SQL strings per pattern row, constants inlined. Returns
/// `(cfd_idx, kind, sql)` where kind distinguishes single/group queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerPatternKind {
    /// Single-tuple query: yields `rid`.
    Single,
    /// Group query: yields the LHS key columns; attribution is done by the
    /// caller re-scanning with the same inlined predicate.
    Group,
}

/// Generate per-pattern detection SQL (see [`PerPatternKind`]).
pub fn per_pattern_sql(tableau: &Tableau) -> Vec<(usize, PerPatternKind, String)> {
    let rel = &tableau.relation;
    let lhs = &tableau.fd.lhs;
    let a = &tableau.fd.rhs;
    let mut out = Vec::new();
    for (pats, rhs_pat, cfd_idx) in &tableau.rows {
        let mut conds: Vec<String> = Vec::new();
        for (attr, p) in lhs.iter().zip(pats) {
            if let Pattern::Const(v) = p {
                conds.push(format!("t.{attr} = {}", v.sql_literal()));
            }
        }
        match rhs_pat {
            Pattern::Const(v) => {
                conds.push(format!("t.{a} <> {}", v.sql_literal()));
                let where_clause = conds.join(" AND ");
                out.push((
                    *cfd_idx,
                    PerPatternKind::Single,
                    format!("SELECT t.__rowid AS rid FROM {rel} t WHERE {where_clause}"),
                ));
            }
            Pattern::Wild => {
                conds.push(format!("t.{a} IS NOT NULL"));
                let where_clause = conds.join(" AND ");
                let keys: Vec<String> = lhs.iter().map(|c| format!("t.{c}")).collect();
                let select = if keys.is_empty() {
                    "1".to_string()
                } else {
                    keys.join(", ")
                };
                let group = if keys.is_empty() {
                    String::new()
                } else {
                    format!(" GROUP BY {}", keys.join(", "))
                };
                out.push((
                    *cfd_idx,
                    PerPatternKind::Group,
                    format!(
                        "SELECT {select} FROM {rel} t WHERE {where_clause}{group} \
                         HAVING COUNT(DISTINCT t.{a}) > 1"
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd::dependency::group_into_tableaux;
    use cfd::parse::parse_cfds;

    fn tableaux(src: &str) -> Vec<Tableau> {
        group_into_tableaux(&parse_cfds(src).unwrap())
    }

    #[test]
    fn merged_sql_contains_wildcard_predicate_and_having() {
        let ts = tableaux(
            "customer: [CNT, ZIP] -> [CITY]\n\
             customer: [CNT='UK', ZIP=_] -> [CITY=_]",
        );
        let sql = merged_detection_sql(&ts[0], "tab0");
        assert!(sql.qc.is_none(), "no constant RHS patterns here");
        let qv = sql.qv.unwrap();
        assert!(qv.contains("(tp.cnt IS NULL OR t.cnt = tp.cnt)"), "{qv}");
        assert!(qv.contains("HAVING COUNT(DISTINCT t.city) > 1"), "{qv}");
        assert!(qv.contains("GROUP BY tp.__pat, t.cnt, t.zip"), "{qv}");
    }

    #[test]
    fn merged_sql_qc_compares_rhs_constants() {
        let ts = tableaux("customer: [CC='44'] -> [CNT='UK']");
        let sql = merged_detection_sql(&ts[0], "tab0");
        let qc = sql.qc.unwrap();
        assert!(
            qc.contains("tp.cnt IS NOT NULL AND t.cnt <> tp.cnt"),
            "{qc}"
        );
        assert!(sql.qv.is_none());
    }

    #[test]
    fn attribution_uses_null_safe_join() {
        let ts = tableaux("customer: [CNT, ZIP] -> [CITY]");
        let sql = merged_detection_sql(&ts[0], "tab0");
        let attr = sql.attribution.unwrap();
        assert!(attr.contains("t.cnt IS NOT DISTINCT FROM v.cnt"), "{attr}");
        assert!(attr.contains("{v}"), "{attr}");
    }

    #[test]
    fn per_pattern_inlines_constants() {
        let ts = tableaux(
            "customer: [CC='44'] -> [CNT='UK']\n\
             customer: [CC=_] -> [CNT=_]",
        );
        let qs = per_pattern_sql(&ts[0]);
        assert_eq!(qs.len(), 2);
        let single = qs
            .iter()
            .find(|(_, k, _)| *k == PerPatternKind::Single)
            .unwrap();
        assert!(single.2.contains("t.cc = '44'"), "{}", single.2);
        assert!(single.2.contains("t.cnt <> 'UK'"), "{}", single.2);
        let group = qs
            .iter()
            .find(|(_, k, _)| *k == PerPatternKind::Group)
            .unwrap();
        assert!(group.2.contains("GROUP BY t.cc"), "{}", group.2);
    }

    #[test]
    fn empty_lhs_generates_valid_sql() {
        let ts = tableaux("r: [] -> [B='x']");
        let sql = merged_detection_sql(&ts[0], "tab0");
        let qc = sql.qc.unwrap();
        assert!(qc.contains("ON 1 = 1"), "{qc}");
    }
}
