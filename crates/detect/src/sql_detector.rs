//! The SQL-based error detector: registers tableau encodings, runs the
//! generated queries, and assembles a [`ViolationReport`] — the code path
//! the Semandaq demo describes as "efficient SQL-based detection".

use std::collections::HashMap;

use cfd::dependency::group_into_tableaux;
use cfd::encode::encode_tableau;
use cfd::{Cfd, CfdError, CfdResult};
use minidb::{Database, DbError, RowId, Value};

use crate::sqlgen::{merged_detection_sql, per_pattern_sql, PerPatternKind};
use crate::violation::ViolationReport;

fn db_err(e: DbError) -> CfdError {
    CfdError::Malformed(format!("SQL detection failed: {e}"))
}

/// Run merged SQL-based detection of `cfds` against `db.relation`.
///
/// Temp tables (`__sdq_tab_i`, `__sdq_vio_i`) are registered and dropped;
/// the data table itself is untouched.
pub fn detect_sql(db: &mut Database, relation: &str, cfds: &[Cfd]) -> CfdResult<ViolationReport> {
    let schema = db.table(relation).map_err(db_err)?.schema().clone();
    let tableaux = group_into_tableaux(cfds);
    let mut report = ViolationReport::default();
    for (i, tab) in tableaux.iter().enumerate() {
        if !tab.relation.eq_ignore_ascii_case(relation) {
            return Err(CfdError::RelationMismatch {
                expected: tab.relation.clone(),
                found: relation.to_string(),
            });
        }
        let tab_name = format!("__sdq_tab_{i}");
        db.register_table(encode_tableau(&tab_name, tab, &schema)?);
        let sql = merged_detection_sql(tab, &tab_name);

        if let Some(qc) = &sql.qc {
            let rows = db.query(qc).map_err(db_err)?;
            let rid_col = rows.column_index("rid").expect("rid projected");
            let pat_col = rows.column_index("pat").expect("pat projected");
            for r in &rows.rows {
                let rid = RowId(r[rid_col].as_int().expect("rowid is int") as u64);
                let pat = r[pat_col].as_int().expect("pat is int") as usize;
                report.push_single(pat, rid);
            }
        }

        if let (Some(qv), Some(attr_tpl)) = (&sql.qv, &sql.attribution) {
            let groups = db.query(qv).map_err(db_err)?;
            if !groups.is_empty() {
                let vio_name = format!("__sdq_vio_{i}");
                db.materialize(&vio_name, &groups).map_err(db_err)?;
                let attr_sql = attr_tpl.replace("{v}", &vio_name);
                let rows = db.query(&attr_sql).map_err(db_err)?;
                db.drop_table(&vio_name).map_err(db_err)?;
                // Group rows by (pat, key values).
                let pat_col = rows.column_index("pat").expect("pat projected");
                let rid_col = rows.column_index("rid").expect("rid projected");
                let rhs_col = rows.column_index("rhs").expect("rhs projected");
                let key_cols: Vec<usize> = tab
                    .fd
                    .lhs
                    .iter()
                    .map(|c| rows.column_index(c).expect("key column projected"))
                    .collect();
                #[allow(clippy::type_complexity)]
                let mut grouped: HashMap<(usize, Vec<Value>), Vec<(RowId, Value)>> = HashMap::new();
                for r in &rows.rows {
                    let pat = r[pat_col].as_int().expect("pat is int") as usize;
                    let key: Vec<Value> = key_cols.iter().map(|&c| r[c].clone()).collect();
                    let rid = RowId(r[rid_col].as_int().expect("rowid is int") as u64);
                    grouped
                        .entry((pat, key))
                        .or_default()
                        .push((rid, r[rhs_col].clone()));
                }
                let mut entries: Vec<_> = grouped.into_iter().collect();
                entries.sort_by_key(|((pat, _), rows)| {
                    (*pat, rows.iter().map(|(r, _)| r.0).min().unwrap_or(0))
                });
                for ((pat, key), members) in entries {
                    report.push_multi(pat, key, members);
                }
            }
        }
        db.drop_table(&tab_name).map_err(db_err)?;
    }
    Ok(report)
}

/// Per-pattern (non-merged) SQL detection — the A1 ablation baseline. One
/// query per pattern row; groups are attributed with a second inlined scan.
pub fn detect_sql_per_pattern(
    db: &mut Database,
    relation: &str,
    cfds: &[Cfd],
) -> CfdResult<ViolationReport> {
    let tableaux = group_into_tableaux(cfds);
    let mut report = ViolationReport::default();
    for tab in &tableaux {
        if !tab.relation.eq_ignore_ascii_case(relation) {
            return Err(CfdError::RelationMismatch {
                expected: tab.relation.clone(),
                found: relation.to_string(),
            });
        }
        for (cfd_idx, kind, sql) in per_pattern_sql(tab) {
            match kind {
                PerPatternKind::Single => {
                    let rows = db.query(&sql).map_err(db_err)?;
                    let rid_col = rows.column_index("rid").expect("rid projected");
                    for r in &rows.rows {
                        let rid = RowId(r[rid_col].as_int().expect("rowid is int") as u64);
                        report.push_single(cfd_idx, rid);
                    }
                }
                PerPatternKind::Group => {
                    let groups = db.query(&sql).map_err(db_err)?;
                    if groups.is_empty() {
                        continue;
                    }
                    // Attribute members natively (scan once, bucket by key).
                    let b = cfds[cfd_idx].bind(db.table(relation).map_err(db_err)?.schema())?;
                    let all_groups =
                        crate::native::variable_groups(db.table(relation).map_err(db_err)?, &b);
                    for gr in &groups.rows {
                        let key: Vec<Value> = gr.clone();
                        if let Some(members) = all_groups.get(&key) {
                            report.push_multi(cfd_idx, key, members.clone());
                        }
                    }
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::detect_native;
    use cfd::parse::parse_cfds;
    use datagen::dirty_customers;

    fn paper_cfds() -> Vec<Cfd> {
        parse_cfds(
            "customer: [CNT, ZIP] -> [CITY]\n\
             customer: [CNT='UK', ZIP=_] -> [STR=_]\n\
             customer: [CC] -> [CNT]\n\
             customer: [CC='44'] -> [CNT='UK']",
        )
        .unwrap()
    }

    #[test]
    fn sql_equals_native_on_dirty_customers() {
        let mut d = dirty_customers(300, 0.05, 7);
        let native = detect_native(d.db.table("customer").unwrap(), &d.cfds)
            .unwrap()
            .normalized();
        let sql = detect_sql(&mut d.db, "customer", &d.cfds)
            .unwrap()
            .normalized();
        assert_eq!(native.violations.len(), sql.violations.len());
        assert_eq!(native, sql);
    }

    #[test]
    fn per_pattern_equals_merged() {
        let mut d = dirty_customers(200, 0.08, 13);
        let merged = detect_sql(&mut d.db, "customer", &d.cfds)
            .unwrap()
            .normalized();
        let per_pat = detect_sql_per_pattern(&mut d.db, "customer", &d.cfds)
            .unwrap()
            .normalized();
        assert_eq!(merged, per_pat);
    }

    #[test]
    fn temp_tables_are_cleaned_up() {
        let mut d = dirty_customers(50, 0.05, 3);
        let before = d.db.table_names();
        detect_sql(&mut d.db, "customer", &d.cfds).unwrap();
        assert_eq!(d.db.table_names(), before);
    }

    #[test]
    fn clean_data_yields_empty_report() {
        let mut d = dirty_customers(150, 0.0, 5);
        let r = detect_sql(&mut d.db, "customer", &d.cfds).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn detection_with_papers_cfds_flags_injected_noise() {
        let mut d = dirty_customers(400, 0.05, 21);
        let r = detect_sql(&mut d.db, "customer", &paper_cfds()).unwrap();
        assert!(!r.is_empty(), "noise at 5% must trigger violations");
        // Every reported row id must be live in the table.
        let t = d.db.table("customer").unwrap();
        for v in &r.violations {
            for row in v.rows() {
                assert!(t.contains(row));
            }
        }
    }

    #[test]
    fn relation_mismatch_is_reported() {
        let mut d = dirty_customers(10, 0.0, 1);
        let cfds = parse_cfds("othertable: [A] -> [B]").unwrap();
        let r = detect_sql(&mut d.db, "customer", &cfds);
        assert!(matches!(r, Err(CfdError::RelationMismatch { .. })));
    }
}
