//! # detect — the Semandaq Error Detector
//!
//! Three interchangeable detection engines over the same CFD semantics:
//!
//! * [`sql_detector::detect_sql`] — the paper's code path: pattern tableaux
//!   encoded relationally, merged QC/QV SQL queries generated and executed
//!   on the [`minidb`] substrate;
//! * [`native::detect_native`] — a direct hash-based reference detector
//!   (cross-validates SQL detection; the baseline in experiment E1);
//! * [`incremental::IncrementalDetector`] — group-indexed state maintained
//!   under inserts/deletes/updates ([3] §7; experiment E3).
//!
//! Plus [`parallel::detect_parallel`], which fans per-CFD native detection
//! across threads — mirroring Semandaq's claim that its quality servers
//! "run independently in a distributed way" — and [`exchange`], the
//! partial-aggregation wire format and coordinator merge that let a
//! *sharded* cluster of quality servers reproduce single-node detection
//! exactly (constant CFDs shard-local, variable CFDs via per-group
//! partial states).

#![warn(missing_docs)]

pub mod exchange;
pub mod fxhash;
pub mod incremental;
pub mod native;
pub mod parallel;
pub mod sql_detector;
pub mod sqlgen;
pub mod violation;

pub use exchange::{merge_cfd_partials, CfdPartial, GroupPartial};
pub use incremental::{CfdSeed, IncrementalDetector};
pub use native::detect_native;
pub use parallel::detect_parallel;
pub use sql_detector::{detect_sql, detect_sql_per_pattern};
pub use violation::{VioTally, Violation, ViolationKind, ViolationReport};
