//! Incremental violation detection ([3] §7, the Data Monitor's engine).
//!
//! Instead of re-running detection after every update, the detector keeps,
//! per CFD, exactly the state the detection queries would recompute:
//!
//! * constant-RHS CFDs: the set of currently violating rows;
//! * variable CFDs: the LHS-group index `key → {row → rhs value}` with
//!   per-group distinct-value counts.
//!
//! Inserts, deletes and cell updates touch only the affected groups, so the
//! cost of an update batch is `O(|Δ| · |Σ| · group)` rather than
//! `O(|D| · |Σ|)` — the crossover against batch detection is experiment E3.

use std::collections::HashMap;

use cfd::{BoundCfd, Cfd, CfdResult};
use minidb::{RowId, Table, Value};

use crate::violation::ViolationReport;

/// A group of LHS-matching tuples: membership plus persistent per-value
/// counts, so the (non-)violating check is O(1) and the O(|group|)
/// conflict-tally walk only runs when a violating group actually changes.
#[derive(Debug, Clone, Default)]
struct Group {
    members: HashMap<RowId, Value>,
    counts: HashMap<Value, u64>,
}

impl Group {
    fn add(&mut self, id: RowId, v: Value) {
        *self.counts.entry(v.clone()).or_default() += 1;
        self.members.insert(id, v);
    }

    fn remove(&mut self, id: RowId) {
        if let Some(v) = self.members.remove(&id) {
            if let Some(n) = self.counts.get_mut(&v) {
                *n -= 1;
                if *n == 0 {
                    self.counts.remove(&v);
                }
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    fn violating(&self) -> bool {
        self.counts.len() >= 2
    }

    /// Conflict-partner tallies (empty when not violating).
    fn contribution(&self) -> Vec<(RowId, u64)> {
        if !self.violating() {
            return Vec::new();
        }
        let total = self.members.len() as u64;
        self.members
            .iter()
            .map(|(r, v)| (*r, total - self.counts[v]))
            .collect()
    }
}

#[derive(Debug, Clone)]
struct VarState {
    groups: HashMap<Vec<Value>, Group>,
}

/// Bulk-seed state for one CFD, produced by a columnar full scan (see
/// `colstore::seed_incremental`): either the violating rows of a
/// constant-RHS CFD or the complete LHS-group index of a variable CFD.
#[derive(Debug, Clone)]
pub enum CfdSeed {
    /// Constant-RHS CFD: the rows currently violating it.
    Constant {
        /// Violating rows.
        violating: Vec<RowId>,
    },
    /// Variable CFD: every LHS group (violating or not), with its non-NULL
    /// RHS members — exactly the state incremental maintenance needs.
    Variable {
        /// `(LHS key, members)` pairs; members hold non-NULL RHS values.
        groups: SeedGroups,
    },
}

/// The group list of a variable-CFD seed: `(LHS key, members)` pairs.
pub type SeedGroups = Vec<(Vec<Value>, Vec<(RowId, Value)>)>;

/// Incrementally maintained detector state for a fixed CFD set and table.
#[derive(Debug, Clone)]
pub struct IncrementalDetector {
    bound: Vec<BoundCfd>,
    /// Per constant-RHS CFD: violating rows.
    const_violations: Vec<HashMap<RowId, ()>>,
    /// Per variable CFD: group index.
    var_state: Vec<VarState>,
    /// Which state slot each CFD uses: `(is_var, slot)`.
    slots: Vec<(bool, usize)>,
    /// Running vio(t) tally.
    vio: HashMap<RowId, i64>,
    /// Running total violation count (records).
    total: i64,
}

impl IncrementalDetector {
    /// Build initial state with one full pass over `table`.
    pub fn build(table: &Table, cfds: &[Cfd]) -> CfdResult<IncrementalDetector> {
        let bound: Vec<BoundCfd> = cfds
            .iter()
            .map(|c| c.bind(table.schema()))
            .collect::<CfdResult<_>>()?;
        let mut slots = Vec::with_capacity(bound.len());
        let mut const_violations = Vec::new();
        let mut var_state = Vec::new();
        for b in &bound {
            if b.cfd.rhs_pat.is_wild() {
                slots.push((true, var_state.len()));
                var_state.push(VarState {
                    groups: HashMap::new(),
                });
            } else {
                slots.push((false, const_violations.len()));
                const_violations.push(HashMap::new());
            }
        }
        let mut me = IncrementalDetector {
            bound,
            const_violations,
            var_state,
            slots,
            vio: HashMap::new(),
            total: 0,
        };
        for (id, row) in table.iter() {
            me.insert(id, row);
        }
        Ok(me)
    }

    /// Assemble a detector from per-CFD bulk state, skipping the
    /// row-at-a-time insert loop of [`IncrementalDetector::build`]. `seeds`
    /// is parallel to `bound`; each seed's kind must match its CFD's RHS
    /// pattern (variable seeds for wildcard RHS, constant seeds otherwise).
    ///
    /// This is the fast full-rescan path: `colstore::seed_incremental`
    /// computes the seeds from a dictionary-encoded snapshot in one
    /// vectorized pass and hands them over here.
    pub fn from_parts(bound: Vec<BoundCfd>, seeds: Vec<CfdSeed>) -> IncrementalDetector {
        assert_eq!(bound.len(), seeds.len(), "one seed per bound CFD");
        let mut slots = Vec::with_capacity(bound.len());
        let mut const_violations: Vec<HashMap<RowId, ()>> = Vec::new();
        let mut var_state: Vec<VarState> = Vec::new();
        let mut vio: HashMap<RowId, i64> = HashMap::new();
        let mut total = 0i64;
        for (b, seed) in bound.iter().zip(seeds) {
            match seed {
                CfdSeed::Constant { violating } => {
                    assert!(
                        !b.cfd.rhs_pat.is_wild(),
                        "constant seed for a variable CFD {}",
                        b.cfd
                    );
                    slots.push((false, const_violations.len()));
                    let mut rows = HashMap::with_capacity(violating.len());
                    for id in violating {
                        if rows.insert(id, ()).is_none() {
                            *vio.entry(id).or_default() += 1;
                            total += 1;
                        }
                    }
                    const_violations.push(rows);
                }
                CfdSeed::Variable { groups } => {
                    assert!(
                        b.cfd.rhs_pat.is_wild(),
                        "variable seed for a constant CFD {}",
                        b.cfd
                    );
                    slots.push((true, var_state.len()));
                    let mut state = VarState {
                        groups: HashMap::with_capacity(groups.len()),
                    };
                    for (key, members) in groups {
                        let mut group = Group::default();
                        for (id, v) in members {
                            debug_assert!(!v.is_null(), "members carry non-NULL RHS values");
                            group.add(id, v);
                        }
                        for (r, n) in group.contribution() {
                            *vio.entry(r).or_default() += n as i64;
                        }
                        if group.violating() {
                            total += 1;
                        }
                        if !group.is_empty() {
                            state.groups.insert(key, group);
                        }
                    }
                    var_state.push(state);
                }
            }
        }
        IncrementalDetector {
            bound,
            const_violations,
            var_state,
            slots,
            vio,
            total,
        }
    }

    /// Total current number of violations (single rows + violating groups).
    pub fn total_violations(&self) -> u64 {
        self.total.max(0) as u64
    }

    /// Current `vio(t)` of a row.
    pub fn vio_of(&self, row: RowId) -> u64 {
        self.vio.get(&row).copied().unwrap_or(0).max(0) as u64
    }

    /// Register an inserted row.
    pub fn insert(&mut self, id: RowId, row: &[Value]) {
        for i in 0..self.bound.len() {
            let (is_var, slot) = self.slots[i];
            if is_var {
                self.var_insert(slot, i, id, row);
            } else {
                let b = &self.bound[i];
                if b.single_tuple_violation(row) {
                    self.const_violations[slot].insert(id, ());
                    *self.vio.entry(id).or_default() += 1;
                    self.total += 1;
                }
            }
        }
    }

    /// Register a deleted row (pass the values it had).
    pub fn delete(&mut self, id: RowId, row: &[Value]) {
        for i in 0..self.bound.len() {
            let (is_var, slot) = self.slots[i];
            if is_var {
                self.var_delete(slot, i, id, row);
            } else if self.const_violations[slot].remove(&id).is_some() {
                *self.vio.entry(id).or_default() -= 1;
                self.total -= 1;
            }
        }
    }

    /// Register an updated row. CFDs whose attributes are untouched by the
    /// update are skipped entirely — the common case for single-cell edits.
    pub fn update(&mut self, id: RowId, old: &[Value], new: &[Value]) {
        for i in 0..self.bound.len() {
            let relevant = {
                let b = &self.bound[i];
                b.lhs_cols
                    .iter()
                    .chain(std::iter::once(&b.rhs_col))
                    .any(|&c| !old[c].strong_eq(&new[c]))
            };
            if !relevant {
                continue;
            }
            let (is_var, slot) = self.slots[i];
            if is_var {
                self.var_delete(slot, i, id, old);
                self.var_insert(slot, i, id, new);
            } else {
                let b = &self.bound[i];
                let was = b.single_tuple_violation(old);
                let is = b.single_tuple_violation(new);
                if was && !is {
                    self.const_violations[slot].remove(&id);
                    *self.vio.entry(id).or_default() -= 1;
                    self.total -= 1;
                } else if !was && is {
                    self.const_violations[slot].insert(id, ());
                    *self.vio.entry(id).or_default() += 1;
                    self.total += 1;
                }
            }
        }
    }

    fn var_insert(&mut self, slot: usize, cfd_idx: usize, id: RowId, row: &[Value]) {
        let b = &self.bound[cfd_idx];
        if !b.lhs_matches(row) {
            return;
        }
        let rhs = row[b.rhs_col].clone();
        if rhs.is_null() {
            return;
        }
        let key = b.lhs_key(row);
        let state = &mut self.var_state[slot];
        let group = state.groups.entry(key).or_default();
        let before = group.contribution();
        group.add(id, rhs);
        let after = group.contribution();
        self.apply_delta(&before, &after);
    }

    fn var_delete(&mut self, slot: usize, cfd_idx: usize, id: RowId, row: &[Value]) {
        let b = &self.bound[cfd_idx];
        if !b.lhs_matches(row) {
            return;
        }
        let rhs = &row[b.rhs_col];
        if rhs.is_null() {
            return;
        }
        let key = b.lhs_key(row);
        let state = &mut self.var_state[slot];
        let Some(group) = state.groups.get_mut(&key) else {
            return;
        };
        let before = group.contribution();
        group.remove(id);
        let after = group.contribution();
        if group.is_empty() {
            state.groups.remove(&key);
        }
        self.apply_delta(&before, &after);
    }

    fn apply_delta(&mut self, before: &[(RowId, u64)], after: &[(RowId, u64)]) {
        if before.is_empty() && after.is_empty() {
            return;
        }
        for (r, n) in before {
            *self.vio.entry(*r).or_default() -= *n as i64;
        }
        for (r, n) in after {
            *self.vio.entry(*r).or_default() += *n as i64;
        }
        // Record count: one per violating group.
        if before.is_empty() && !after.is_empty() {
            self.total += 1;
        } else if !before.is_empty() && after.is_empty() {
            self.total -= 1;
        }
    }

    /// Materialize the current state into a full [`ViolationReport`]
    /// (O(state), not O(data)).
    pub fn report(&self) -> ViolationReport {
        let mut report = ViolationReport::default();
        for (i, _) in self.bound.iter().enumerate() {
            let (is_var, slot) = self.slots[i];
            if is_var {
                for (key, group) in &self.var_state[slot].groups {
                    if !group.violating() {
                        continue;
                    }
                    let members: Vec<(RowId, Value)> =
                        group.members.iter().map(|(r, v)| (*r, v.clone())).collect();
                    report.push_multi(i, key.clone(), members);
                }
            } else {
                let mut rows: Vec<RowId> = self.const_violations[slot].keys().copied().collect();
                rows.sort();
                for r in rows {
                    report.push_single(i, r);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::detect_native;
    use datagen::{dirty_customers, CellNoise};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_matches_batch(table: &Table, det: &IncrementalDetector, cfds: &[Cfd]) {
        let batch = detect_native(table, cfds).unwrap().normalized();
        let inc = det.report().normalized();
        assert_eq!(batch, inc);
        assert_eq!(batch.len() as u64, det.total_violations());
        for (row, v) in batch.vio.iter() {
            assert_eq!(det.vio_of(row), v, "vio mismatch on {row:?}");
        }
    }

    #[test]
    fn build_matches_batch_detection() {
        let d = dirty_customers(300, 0.05, 17);
        let t = d.db.table("customer").unwrap();
        let det = IncrementalDetector::build(t, &d.cfds).unwrap();
        assert_matches_batch(t, &det, &d.cfds);
    }

    #[test]
    fn random_update_stream_stays_consistent() {
        let mut d = dirty_customers(150, 0.04, 23);
        let mut det = IncrementalDetector::build(d.db.table("customer").unwrap(), &d.cfds).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        // Apply 60 random cell updates / deletes / inserts.
        for step in 0..60 {
            let t = d.db.table("customer").unwrap();
            let ids: Vec<RowId> = t.iter().map(|(id, _)| id).collect();
            match step % 3 {
                0 => {
                    // update a random cell to a random other row's value
                    let id = ids[rng.gen_range(0..ids.len())];
                    let col = rng.gen_range(1..6usize);
                    let donor = ids[rng.gen_range(0..ids.len())];
                    let new_val = t.get(donor).unwrap()[col].clone();
                    let old_row: Vec<Value> = t.get(id).unwrap().to_vec();
                    let mut new_row = old_row.clone();
                    new_row[col] = new_val.clone();
                    d.db.update_cell("customer", id, col, new_val).unwrap();
                    det.update(id, &old_row, &new_row);
                }
                1 => {
                    // delete a random row
                    let id = ids[rng.gen_range(0..ids.len())];
                    let old = d.db.delete_row("customer", id).unwrap();
                    det.delete(id, &old);
                }
                _ => {
                    // insert a copy of a random row (forces group growth)
                    let donor = ids[rng.gen_range(0..ids.len())];
                    let row: Vec<Value> = t.get(donor).unwrap().to_vec();
                    let id = d.db.insert_row("customer", row.clone()).unwrap();
                    det.insert(id, &row);
                }
            }
            if step % 10 == 9 {
                assert_matches_batch(d.db.table("customer").unwrap(), &det, &d.cfds);
            }
        }
        assert_matches_batch(d.db.table("customer").unwrap(), &det, &d.cfds);
    }

    #[test]
    fn repairing_noise_restores_zero_violations() {
        let mut d = dirty_customers(120, 0.03, 31);
        let mut det = IncrementalDetector::build(d.db.table("customer").unwrap(), &d.cfds).unwrap();
        // Undo every injected error through the incremental interface.
        let mask: Vec<CellNoise> = d.mask.clone();
        for m in mask.iter().rev() {
            let t = d.db.table("customer").unwrap();
            if !t.contains(m.row) {
                continue;
            }
            let old_row: Vec<Value> = t.get(m.row).unwrap().to_vec();
            let mut new_row = old_row.clone();
            new_row[m.col] = m.original.clone();
            d.db.update_cell("customer", m.row, m.col, m.original.clone())
                .unwrap();
            det.update(m.row, &old_row, &new_row);
        }
        assert_eq!(det.total_violations(), 0);
        assert!(det.report().is_empty());
    }

    #[test]
    fn insert_then_delete_is_identity() {
        let d = dirty_customers(80, 0.05, 41);
        let t = d.db.table("customer").unwrap();
        let mut det = IncrementalDetector::build(t, &d.cfds).unwrap();
        let before_total = det.total_violations();
        let row: Vec<Value> = t.iter().next().unwrap().1.to_vec();
        det.insert(RowId(9999), &row);
        det.delete(RowId(9999), &row);
        assert_eq!(det.total_violations(), before_total);
        assert_matches_batch(t, &det, &d.cfds);
    }
}
