//! Violation records and the per-tuple `vio(t)` tally.
//!
//! The demo paper (§2, Error Detector) defines `vio(t)` as: 0 initially,
//! +1 for each CFD for which `t` is a single-tuple violation, and, for each
//! CFD, + the cardinality of the set of tuples that *jointly with `t`*
//! violate that CFD. We read "jointly violating with t" as the tuples in
//! `t`'s LHS-group holding a **different** RHS value (its conflict
//! partners): in a group {a, a, b}, each `a`-tuple gains 1 and the
//! `b`-tuple gains 2.
//!
//! NULL handling mirrors the SQL detection queries: tuples with a NULL RHS
//! are never violators, and a group violates only if it holds ≥ 2 distinct
//! non-NULL RHS values.

use std::collections::HashMap;
use std::sync::Arc;

use minidb::{RowId, Value};

use crate::fxhash::FxHashMap;

/// The per-row `vio(t)` tally map. Keys are row ids — sequential integers,
/// the classic case where SipHash is pure overhead; detection pushes one
/// `vio` update per violating tuple, so this map is on the hot path of
/// every engine.
pub type VioMap = FxHashMap<RowId, u64>;

/// The kind of a violation.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// A tuple conflicting with a constant-RHS CFD all by itself.
    SingleTuple {
        /// The violating tuple.
        row: RowId,
    },
    /// A group of tuples jointly violating a variable CFD.
    MultiTuple {
        /// LHS key shared by the group.
        key: Vec<Value>,
        /// Members with non-NULL RHS values, as `(row, rhs value)`.
        /// `Arc`-shared: violating groups can run to the whole relation,
        /// and the snapshot lifecycle replays memoized groups into fresh
        /// reports — sharing makes that a refcount bump per group instead
        /// of a clone per member.
        rows: Arc<Vec<(RowId, Value)>>,
    },
}

/// One detected violation, attributed to a CFD (by index into the checked
/// constraint slice).
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the violated CFD in the input constraint set.
    pub cfd_idx: usize,
    /// What was violated and by whom.
    pub kind: ViolationKind,
}

impl Violation {
    /// Rows involved in this violation.
    pub fn rows(&self) -> Vec<RowId> {
        match &self.kind {
            ViolationKind::SingleTuple { row } => vec![*row],
            ViolationKind::MultiTuple { rows, .. } => rows.iter().map(|(r, _)| *r).collect(),
        }
    }
}

/// Full detection output: the violations plus derived statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViolationReport {
    /// All violations, ordered by CFD index then discovery order.
    pub violations: Vec<Violation>,
    /// `vio(t)` per row (rows with zero violations are absent).
    pub vio: VioMap,
    /// Number of violations per CFD index.
    pub per_cfd: HashMap<usize, usize>,
}

impl ViolationReport {
    /// Add a single-tuple violation.
    pub fn push_single(&mut self, cfd_idx: usize, row: RowId) {
        *self.vio.entry(row).or_default() += 1;
        *self.per_cfd.entry(cfd_idx).or_default() += 1;
        self.violations.push(Violation {
            cfd_idx,
            kind: ViolationKind::SingleTuple { row },
        });
    }

    /// Add a multi-tuple violation group; computes each member's conflict
    /// partners. `rows` must hold non-NULL RHS values with ≥ 2 distinct.
    pub fn push_multi(&mut self, cfd_idx: usize, key: Vec<Value>, rows: Vec<(RowId, Value)>) {
        debug_assert!(rows.len() >= 2, "multi-tuple violation needs >= 2 rows");
        // Groups usually disagree on a handful of distinct RHS values, where
        // a linear counted-vec beats a HashMap (no Value hashing per
        // member); past a small threshold fall back to hashing so
        // high-cardinality groups stay O(members).
        const LINEAR_MAX: usize = 16;
        let mut counts: Vec<(&Value, u64)> = Vec::new();
        let mut hashed: Option<FxHashMap<&Value, u64>> = None;
        for (_, v) in &rows {
            if let Some(map) = &mut hashed {
                *map.entry(v).or_default() += 1;
                continue;
            }
            match counts.iter().position(|(u, _)| u.strong_eq(v)) {
                Some(i) => counts[i].1 += 1,
                None if counts.len() < LINEAR_MAX => counts.push((v, 1)),
                None => {
                    let mut map: FxHashMap<&Value, u64> = counts.drain(..).collect();
                    *map.entry(v).or_default() += 1;
                    hashed = Some(map);
                }
            }
        }
        let own: Vec<u64> = match &hashed {
            Some(map) => {
                debug_assert!(map.len() >= 2, "group must disagree on RHS");
                rows.iter().map(|(_, v)| map[v]).collect()
            }
            None => {
                debug_assert!(counts.len() >= 2, "group must disagree on RHS");
                rows.iter()
                    .map(|(_, v)| {
                        counts
                            .iter()
                            .find(|(u, _)| u.strong_eq(v))
                            .expect("every member was counted")
                            .1
                    })
                    .collect()
            }
        };
        self.push_multi_prepared(cfd_idx, key, rows, &own);
    }

    /// [`ViolationReport::push_multi`] with the per-member value
    /// multiplicities already known (`own[i]` = how many group members hold
    /// the same RHS value as `rows[i]`). The columnar detector counts over
    /// dictionary codes and skips the value comparisons entirely.
    pub fn push_multi_prepared(
        &mut self,
        cfd_idx: usize,
        key: Vec<Value>,
        rows: Vec<(RowId, Value)>,
        own: &[u64],
    ) {
        self.push_multi_shared(cfd_idx, key, Arc::new(rows), own);
    }

    /// [`ViolationReport::push_multi_prepared`] over an already-shared
    /// member list: the snapshot lifecycle's memo replays a fragment's
    /// groups into each fresh report for one refcount bump per group.
    pub fn push_multi_shared(
        &mut self,
        cfd_idx: usize,
        key: Vec<Value>,
        rows: Arc<Vec<(RowId, Value)>>,
        own: &[u64],
    ) {
        debug_assert_eq!(rows.len(), own.len(), "one multiplicity per member");
        let total = rows.len() as u64;
        for ((r, _), n) in rows.iter().zip(own) {
            *self.vio.entry(*r).or_default() += total - n;
        }
        *self.per_cfd.entry(cfd_idx).or_default() += 1;
        self.violations.push(Violation {
            cfd_idx,
            kind: ViolationKind::MultiTuple { key, rows },
        });
    }

    /// `vio(t)` for a row (0 when clean).
    pub fn vio_of(&self, row: RowId) -> u64 {
        self.vio.get(&row).copied().unwrap_or(0)
    }

    /// Total number of violations (records, not tuples).
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// True if nothing was detected.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// All rows involved in at least one violation.
    pub fn dirty_rows(&self) -> Vec<RowId> {
        let mut rows: Vec<RowId> = self.vio.keys().copied().collect();
        rows.sort();
        rows
    }

    /// Merge another report into this one (used by the parallel detector).
    pub fn merge(&mut self, other: ViolationReport) {
        for v in other.violations {
            match v.kind {
                ViolationKind::SingleTuple { row } => self.push_single(v.cfd_idx, row),
                ViolationKind::MultiTuple { key, rows } => {
                    let rows = Arc::try_unwrap(rows).unwrap_or_else(|a| (*a).clone());
                    self.push_multi(v.cfd_idx, key, rows);
                }
            }
        }
    }

    /// Canonical ordering for equality tests: sorts violations by
    /// (cfd, kind, first row, key).
    pub fn normalized(mut self) -> ViolationReport {
        for v in &mut self.violations {
            if let ViolationKind::MultiTuple { rows, .. } = &mut v.kind {
                // Shared member lists are cloned only when actually out of
                // order (memoized groups are often already row-sorted).
                if !rows.windows(2).all(|w| w[0].0 <= w[1].0) {
                    Arc::make_mut(rows).sort_by_key(|(r, _)| *r);
                }
            }
        }
        self.violations.sort_by(|a, b| {
            let ka = (a.cfd_idx, violation_sort_key(a));
            let kb = (b.cfd_idx, violation_sort_key(b));
            ka.cmp(&kb)
        });
        self
    }
}

fn violation_sort_key(v: &Violation) -> (u8, u64, String) {
    match &v.kind {
        ViolationKind::SingleTuple { row } => (0, row.0, String::new()),
        ViolationKind::MultiTuple { key, rows } => (
            1,
            rows.first().map(|(r, _)| r.0).unwrap_or(0),
            key.iter()
                .map(|v| v.render())
                .collect::<Vec<_>>()
                .join("\u{1}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_violation_increments_by_one() {
        let mut r = ViolationReport::default();
        r.push_single(0, RowId(3));
        r.push_single(1, RowId(3));
        assert_eq!(r.vio_of(RowId(3)), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn multi_violation_counts_conflict_partners() {
        let mut r = ViolationReport::default();
        // Group {a, a, b}: a-tuples get +1, b-tuple gets +2.
        r.push_multi(
            0,
            vec![Value::str("UK")],
            vec![
                (RowId(1), Value::str("a")),
                (RowId(2), Value::str("a")),
                (RowId(3), Value::str("b")),
            ],
        );
        assert_eq!(r.vio_of(RowId(1)), 1);
        assert_eq!(r.vio_of(RowId(2)), 1);
        assert_eq!(r.vio_of(RowId(3)), 2);
    }

    #[test]
    fn merge_accumulates_tallies() {
        let mut a = ViolationReport::default();
        a.push_single(0, RowId(1));
        let mut b = ViolationReport::default();
        b.push_single(2, RowId(1));
        a.merge(b);
        assert_eq!(a.vio_of(RowId(1)), 2);
        assert_eq!(a.per_cfd[&0], 1);
        assert_eq!(a.per_cfd[&2], 1);
    }

    #[test]
    fn normalized_is_order_insensitive() {
        let mut a = ViolationReport::default();
        a.push_single(0, RowId(1));
        a.push_single(0, RowId(2));
        let mut b = ViolationReport::default();
        b.push_single(0, RowId(2));
        b.push_single(0, RowId(1));
        assert_eq!(a.normalized(), b.normalized());
    }

    #[test]
    fn dirty_rows_sorted_unique() {
        let mut r = ViolationReport::default();
        r.push_single(0, RowId(9));
        r.push_single(1, RowId(2));
        r.push_single(2, RowId(9));
        assert_eq!(r.dirty_rows(), vec![RowId(2), RowId(9)]);
    }
}
