//! Violation records and the per-tuple `vio(t)` tally.
//!
//! The demo paper (§2, Error Detector) defines `vio(t)` as: 0 initially,
//! +1 for each CFD for which `t` is a single-tuple violation, and, for each
//! CFD, + the cardinality of the set of tuples that *jointly with `t`*
//! violate that CFD. We read "jointly violating with t" as the tuples in
//! `t`'s LHS-group holding a **different** RHS value (its conflict
//! partners): in a group {a, a, b}, each `a`-tuple gains 1 and the
//! `b`-tuple gains 2.
//!
//! NULL handling mirrors the SQL detection queries: tuples with a NULL RHS
//! are never violators, and a group violates only if it holds ≥ 2 distinct
//! non-NULL RHS values.

use std::collections::HashMap;
use std::sync::Arc;

use minidb::{RowId, Value};

use crate::fxhash::{DistinctCounter, FxHashMap, FxHasher};

/// The per-row `vio(t)` tally, stored **dense**: row ids are arena slot
/// indices (small sequential integers), so a flat `Vec<u64>` indexed by
/// `RowId` replaces the hash map that used to sit on the per-member hot
/// path of every detection engine — one bounds check and an add per
/// violating member, no hashing, no probing. Rows with zero violations
/// occupy (or imply) a zero slot and are invisible to iteration, length
/// and equality, so the map-of-dirty-rows reading of `vio` is preserved.
#[derive(Debug, Clone, Default)]
pub struct VioTally {
    /// `vio(t)` by arena slot; trailing rows may be absent (= 0).
    dense: Vec<u64>,
    /// Number of rows with `vio(t) > 0`.
    nonzero: usize,
}

impl VioTally {
    /// Add `delta` to `vio(row)`. Zero deltas are ignored (they would
    /// otherwise force slot growth for a clean row).
    pub fn add(&mut self, row: RowId, delta: u64) {
        if delta == 0 {
            return;
        }
        let i = row.index();
        if i >= self.dense.len() {
            self.dense.resize(i + 1, 0);
        }
        let slot = &mut self.dense[i];
        if *slot == 0 {
            self.nonzero += 1;
        }
        *slot += delta;
    }

    /// `vio(row)`, zero when clean.
    pub fn get(&self, row: RowId) -> u64 {
        self.dense.get(row.index()).copied().unwrap_or(0)
    }

    /// True iff `vio(row) > 0`.
    pub fn contains(&self, row: RowId) -> bool {
        self.get(row) > 0
    }

    /// Number of rows with a non-zero tally.
    pub fn len(&self) -> usize {
        self.nonzero
    }

    /// True iff every row is clean.
    pub fn is_empty(&self) -> bool {
        self.nonzero == 0
    }

    /// `(row, vio)` pairs with `vio > 0`, in ascending row order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, u64)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0)
            .map(|(i, &v)| (RowId(i as u64), v))
    }

    /// Rows with a non-zero tally, ascending.
    pub fn rows(&self) -> impl Iterator<Item = RowId> + '_ {
        self.iter().map(|(r, _)| r)
    }

    /// Non-zero tallies, in ascending row order.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl PartialEq for VioTally {
    fn eq(&self, other: &VioTally) -> bool {
        // Dense vectors of different lengths (trailing zeros) must still
        // compare equal when the non-zero entries agree.
        self.nonzero == other.nonzero && self.iter().eq(other.iter())
    }
}

/// The kind of a violation.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// A tuple conflicting with a constant-RHS CFD all by itself.
    SingleTuple {
        /// The violating tuple.
        row: RowId,
    },
    /// A group of tuples jointly violating a variable CFD.
    MultiTuple {
        /// LHS key shared by the group.
        key: Vec<Value>,
        /// Members with non-NULL RHS values, as `(row, rhs value)`.
        /// `Arc`-shared: violating groups can run to the whole relation,
        /// and the snapshot lifecycle replays memoized groups into fresh
        /// reports — sharing makes that a refcount bump per group instead
        /// of a clone per member.
        rows: Arc<Vec<(RowId, Value)>>,
    },
}

/// One detected violation, attributed to a CFD (by index into the checked
/// constraint slice).
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the violated CFD in the input constraint set.
    pub cfd_idx: usize,
    /// What was violated and by whom.
    pub kind: ViolationKind,
}

impl Violation {
    /// Rows involved in this violation.
    pub fn rows(&self) -> Vec<RowId> {
        match &self.kind {
            ViolationKind::SingleTuple { row } => vec![*row],
            ViolationKind::MultiTuple { rows, .. } => rows.iter().map(|(r, _)| *r).collect(),
        }
    }
}

/// Full detection output: the violations plus derived statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViolationReport {
    /// All violations, ordered by CFD index then discovery order.
    pub violations: Vec<Violation>,
    /// `vio(t)` per row (rows with zero violations are absent).
    pub vio: VioTally,
    /// Number of violations per CFD index.
    pub per_cfd: HashMap<usize, usize>,
}

impl ViolationReport {
    /// Add a single-tuple violation.
    pub fn push_single(&mut self, cfd_idx: usize, row: RowId) {
        self.vio.add(row, 1);
        *self.per_cfd.entry(cfd_idx).or_default() += 1;
        self.violations.push(Violation {
            cfd_idx,
            kind: ViolationKind::SingleTuple { row },
        });
    }

    /// Add a multi-tuple violation group; computes each member's conflict
    /// partners. `rows` must hold non-NULL RHS values with ≥ 2 distinct.
    pub fn push_multi(&mut self, cfd_idx: usize, key: Vec<Value>, rows: Vec<(RowId, Value)>) {
        debug_assert!(rows.len() >= 2, "multi-tuple violation needs >= 2 rows");
        // Per-member value multiplicities, counted by reference (Value's
        // Eq/Hash are strong_eq-consistent, so counting slots group
        // exactly like the detection engines do).
        let mut counter: DistinctCounter<&Value> = DistinctCounter::new();
        let idxs: Vec<u32> = rows.iter().map(|(_, v)| counter.add(v)).collect();
        debug_assert!(counter.distinct() >= 2, "group must disagree on RHS");
        let own: Vec<u64> = idxs.into_iter().map(|i| counter.count_at(i)).collect();
        self.push_multi_prepared(cfd_idx, key, rows, &own);
    }

    /// [`ViolationReport::push_multi`] with the per-member value
    /// multiplicities already known (`own[i]` = how many group members hold
    /// the same RHS value as `rows[i]`). The columnar detector counts over
    /// dictionary codes and skips the value comparisons entirely.
    pub fn push_multi_prepared(
        &mut self,
        cfd_idx: usize,
        key: Vec<Value>,
        rows: Vec<(RowId, Value)>,
        own: &[u64],
    ) {
        self.push_multi_shared(cfd_idx, key, Arc::new(rows), own);
    }

    /// [`ViolationReport::push_multi_prepared`] over an already-shared
    /// member list: the snapshot lifecycle's memo replays a fragment's
    /// groups into each fresh report for one refcount bump per group.
    pub fn push_multi_shared(
        &mut self,
        cfd_idx: usize,
        key: Vec<Value>,
        rows: Arc<Vec<(RowId, Value)>>,
        own: &[u64],
    ) {
        debug_assert_eq!(rows.len(), own.len(), "one multiplicity per member");
        let total = rows.len() as u64;
        for ((r, _), n) in rows.iter().zip(own) {
            self.vio.add(*r, total - n);
        }
        *self.per_cfd.entry(cfd_idx).or_default() += 1;
        self.violations.push(Violation {
            cfd_idx,
            kind: ViolationKind::MultiTuple { key, rows },
        });
    }

    /// `vio(t)` for a row (0 when clean).
    pub fn vio_of(&self, row: RowId) -> u64 {
        self.vio.get(row)
    }

    /// Total number of violations (records, not tuples).
    pub fn len(&self) -> usize {
        self.violations.len()
    }

    /// True if nothing was detected.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
    }

    /// All rows involved in at least one violation, ascending.
    pub fn dirty_rows(&self) -> Vec<RowId> {
        self.vio.rows().collect()
    }

    /// Merge another report into this one — the parallel detector's
    /// per-CFD parts, or a cluster coordinator folding per-replica
    /// reports together.
    ///
    /// Violations this report already contains — same CFD and same row
    /// (single-tuple), or same key and member *set* (multi-tuple,
    /// order-insensitive) — are **skipped**, not double-counted: when two
    /// shards observe the same group, the merged report must hold the
    /// group once, with each member's `vio(t)` contribution counted once.
    pub fn merge(&mut self, other: ViolationReport) {
        // Every fingerprint includes the CFD index, so reports over
        // disjoint CFD sets — the parallel detector's per-CFD parts —
        // cannot contain duplicates; skip the dedupe bookkeeping entirely
        // rather than re-index the growing receiver on every part.
        if other.per_cfd.keys().all(|k| !self.per_cfd.contains_key(k)) {
            for v in other.violations {
                self.absorb(v);
            }
            return;
        }
        // Fingerprint index over the violations already present; exact
        // equality is re-verified on fingerprint hits, so a hash collision
        // can never drop a genuine violation.
        let mut seen: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        for (i, v) in self.violations.iter().enumerate() {
            seen.entry(fingerprint(v)).or_default().push(i);
        }
        for v in other.violations {
            let fp = fingerprint(&v);
            if let Some(idxs) = seen.get(&fp) {
                if idxs
                    .iter()
                    .any(|&i| same_violation(&self.violations[i], &v))
                {
                    continue; // duplicate observation of one violation
                }
            }
            let idx = self.violations.len();
            self.absorb(v);
            seen.entry(fp).or_default().push(idx);
        }
    }

    /// Append a violation taken from another report, recomputing tallies.
    fn absorb(&mut self, v: Violation) {
        match v.kind {
            ViolationKind::SingleTuple { row } => self.push_single(v.cfd_idx, row),
            ViolationKind::MultiTuple { key, rows } => {
                let rows = Arc::try_unwrap(rows).unwrap_or_else(|a| (*a).clone());
                self.push_multi(v.cfd_idx, key, rows);
            }
        }
    }

    /// Canonical ordering for equality tests: sorts violations by
    /// (cfd, kind, first row, key).
    pub fn normalized(mut self) -> ViolationReport {
        for v in &mut self.violations {
            if let ViolationKind::MultiTuple { rows, .. } = &mut v.kind {
                // Shared member lists are cloned only when actually out of
                // order (memoized groups are often already row-sorted).
                if !rows.windows(2).all(|w| w[0].0 <= w[1].0) {
                    Arc::make_mut(rows).sort_by_key(|(r, _)| *r);
                }
            }
        }
        self.violations.sort_by(|a, b| {
            let ka = (a.cfd_idx, violation_sort_key(a));
            let kb = (b.cfd_idx, violation_sort_key(b));
            ka.cmp(&kb)
        });
        self
    }
}

/// Order-insensitive digest of a violation, used by [`ViolationReport::merge`]
/// to index candidates for deduplication. Multi-tuple member order is
/// folded commutatively (two shards may have scanned the group in
/// different orders); collisions are resolved by [`same_violation`].
fn fingerprint(v: &Violation) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    h.write_usize(v.cfd_idx);
    match &v.kind {
        ViolationKind::SingleTuple { row } => {
            h.write_u8(0);
            h.write_u64(row.0);
        }
        ViolationKind::MultiTuple { key, rows } => {
            h.write_u8(1);
            h.write_usize(key.len());
            h.write_usize(rows.len());
            let digest = rows
                .iter()
                .map(|(r, _)| (r.0 ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(0x2545_f491_4f6c_dd1d))
                .fold(0u64, u64::wrapping_add);
            h.write_u64(digest);
        }
    }
    h.finish()
}

/// Exact duplicate check behind [`fingerprint`]: same CFD and same row
/// (single-tuple) or same key and member multiset (multi-tuple; member
/// values compare by `strong_eq` through `Value`'s `PartialEq`).
fn same_violation(a: &Violation, b: &Violation) -> bool {
    if a.cfd_idx != b.cfd_idx {
        return false;
    }
    match (&a.kind, &b.kind) {
        (ViolationKind::SingleTuple { row: x }, ViolationKind::SingleTuple { row: y }) => x == y,
        (
            ViolationKind::MultiTuple { key: ka, rows: ra },
            ViolationKind::MultiTuple { key: kb, rows: rb },
        ) => {
            if ka != kb || ra.len() != rb.len() {
                return false;
            }
            if Arc::ptr_eq(ra, rb) {
                return true;
            }
            fn sorted(rows: &[(RowId, Value)]) -> Vec<&(RowId, Value)> {
                let mut m: Vec<&(RowId, Value)> = rows.iter().collect();
                m.sort_by_key(|(r, _)| *r);
                m
            }
            sorted(ra) == sorted(rb)
        }
        _ => false,
    }
}

fn violation_sort_key(v: &Violation) -> (u8, u64, String) {
    match &v.kind {
        ViolationKind::SingleTuple { row } => (0, row.0, String::new()),
        ViolationKind::MultiTuple { key, rows } => (
            1,
            rows.first().map(|(r, _)| r.0).unwrap_or(0),
            key.iter()
                .map(|v| v.render())
                .collect::<Vec<_>>()
                .join("\u{1}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_violation_increments_by_one() {
        let mut r = ViolationReport::default();
        r.push_single(0, RowId(3));
        r.push_single(1, RowId(3));
        assert_eq!(r.vio_of(RowId(3)), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn multi_violation_counts_conflict_partners() {
        let mut r = ViolationReport::default();
        // Group {a, a, b}: a-tuples get +1, b-tuple gets +2.
        r.push_multi(
            0,
            vec![Value::str("UK")],
            vec![
                (RowId(1), Value::str("a")),
                (RowId(2), Value::str("a")),
                (RowId(3), Value::str("b")),
            ],
        );
        assert_eq!(r.vio_of(RowId(1)), 1);
        assert_eq!(r.vio_of(RowId(2)), 1);
        assert_eq!(r.vio_of(RowId(3)), 2);
    }

    #[test]
    fn merge_accumulates_tallies() {
        let mut a = ViolationReport::default();
        a.push_single(0, RowId(1));
        let mut b = ViolationReport::default();
        b.push_single(2, RowId(1));
        a.merge(b);
        assert_eq!(a.vio_of(RowId(1)), 2);
        assert_eq!(a.per_cfd[&0], 1);
        assert_eq!(a.per_cfd[&2], 1);
    }

    #[test]
    fn normalized_is_order_insensitive() {
        let mut a = ViolationReport::default();
        a.push_single(0, RowId(1));
        a.push_single(0, RowId(2));
        let mut b = ViolationReport::default();
        b.push_single(0, RowId(2));
        b.push_single(0, RowId(1));
        assert_eq!(a.normalized(), b.normalized());
    }

    fn multi(cfd_idx: usize, members: &[(u64, &str)]) -> ViolationReport {
        let mut r = ViolationReport::default();
        r.push_multi(
            cfd_idx,
            vec![Value::str("UK")],
            members
                .iter()
                .map(|&(id, v)| (RowId(id), Value::str(v)))
                .collect(),
        );
        r
    }

    #[test]
    fn merge_dedupes_identical_group_from_two_shards() {
        // Two replicas (or overlapping shards) observe the *same* group:
        // the merged report must hold it once, tallies counted once.
        let group = [(1u64, "a"), (2, "a"), (3, "b")];
        let mut a = multi(0, &group);
        let expect = a.clone().normalized();
        a.merge(multi(0, &group));
        assert_eq!(a.len(), 1, "duplicate group must not be re-added");
        assert_eq!(a.vio_of(RowId(1)), 1);
        assert_eq!(a.vio_of(RowId(3)), 2);
        assert_eq!(a.normalized(), expect);
    }

    #[test]
    fn merge_dedupes_order_insensitively() {
        // A shard that scanned the group in a different member order still
        // reports the same violation.
        let mut a = multi(0, &[(1, "a"), (2, "a"), (3, "b")]);
        a.merge(multi(0, &[(3, "b"), (1, "a"), (2, "a")]));
        assert_eq!(a.len(), 1);
        assert_eq!(a.vio_of(RowId(2)), 1);
    }

    #[test]
    fn merge_keeps_distinct_groups_and_cfds() {
        // Same members under a different CFD index, and a genuinely
        // different group under the same CFD: both survive the merge.
        let mut a = multi(0, &[(1, "a"), (3, "b")]);
        a.merge(multi(1, &[(1, "a"), (3, "b")]));
        a.merge(multi(0, &[(5, "x"), (6, "y")]));
        assert_eq!(a.len(), 3);
        assert_eq!(a.vio_of(RowId(1)), 2, "one partner per CFD");
        // Same key/members but a *different RHS assignment* is a different
        // violation (values participate in the member comparison).
        a.merge(multi(0, &[(5, "y"), (6, "x")]));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn merge_dedupes_duplicate_singles() {
        let mut a = ViolationReport::default();
        a.push_single(0, RowId(7));
        let mut b = ViolationReport::default();
        b.push_single(0, RowId(7));
        b.push_single(1, RowId(7));
        a.merge(b);
        assert_eq!(a.len(), 2, "same (cfd, row) single collapses");
        assert_eq!(a.vio_of(RowId(7)), 2);
    }

    #[test]
    fn normalized_equal_regardless_of_shard_arrival_order() {
        let g1 = [(1u64, "a"), (4, "b")];
        let g2 = [(2u64, "x"), (3, "y")];
        let mut ab = multi(0, &g1);
        ab.merge(multi(0, &g2));
        let mut ba = multi(0, &g2);
        ba.merge(multi(0, &g1));
        assert_eq!(ab.normalized(), ba.normalized());
    }

    #[test]
    fn dense_tally_ignores_arena_width() {
        // Reports over the same rows compare equal even when one tally's
        // dense vector stretches further (trailing zero slots).
        let mut a = ViolationReport::default();
        a.push_single(0, RowId(1));
        let mut b = ViolationReport::default();
        b.push_single(0, RowId(1));
        b.vio.add(RowId(900), 3);
        assert_ne!(a.vio, b.vio);
        let mut c = ViolationReport::default();
        c.push_single(0, RowId(1));
        assert_eq!(a.vio, c.vio);
        assert_eq!(b.vio.len(), 2);
        assert_eq!(b.vio.rows().collect::<Vec<_>>(), vec![RowId(1), RowId(900)]);
    }

    #[test]
    fn dirty_rows_sorted_unique() {
        let mut r = ViolationReport::default();
        r.push_single(0, RowId(9));
        r.push_single(1, RowId(2));
        r.push_single(2, RowId(9));
        assert_eq!(r.dirty_rows(), vec![RowId(2), RowId(9)]);
    }
}
