//! Native (hash-based) violation detection.
//!
//! This is the reference implementation of CFD semantics: a direct scan
//! that mirrors exactly what the generated SQL computes. It serves three
//! purposes: (1) cross-validation of the SQL path (they must agree on every
//! instance — see the property tests), (2) the fast engine behind the
//! incremental detector, and (3) the baseline in the E1 benchmarks.

use std::collections::HashMap;

use cfd::{BoundCfd, Cfd, CfdResult};
use minidb::{RowId, Table, Value};

use crate::violation::ViolationReport;

/// Detect all violations of `cfds` in `table` with one scan per CFD.
pub fn detect_native(table: &Table, cfds: &[Cfd]) -> CfdResult<ViolationReport> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(table.schema()))
        .collect::<CfdResult<_>>()?;
    let mut report = ViolationReport::default();
    for (idx, b) in bound.iter().enumerate() {
        detect_one(table, idx, b, &mut report);
    }
    Ok(report)
}

/// Detect violations of a single bound CFD, appending to `report`.
pub fn detect_one(table: &Table, cfd_idx: usize, b: &BoundCfd, report: &mut ViolationReport) {
    if b.cfd.rhs_pat.constant().is_some() {
        for (id, row) in table.iter() {
            if b.single_tuple_violation(row) {
                report.push_single(cfd_idx, id);
            }
        }
    } else {
        for (key, rows) in variable_groups(table, b) {
            if group_violates(&rows) {
                report.push_multi(cfd_idx, key, rows);
            }
        }
    }
}

/// Group the LHS-matching tuples of a variable CFD by their LHS key,
/// keeping only members with a non-NULL RHS value.
pub fn variable_groups(table: &Table, b: &BoundCfd) -> HashMap<Vec<Value>, Vec<(RowId, Value)>> {
    let mut groups: HashMap<Vec<Value>, Vec<(RowId, Value)>> = HashMap::new();
    for (id, row) in table.iter() {
        if !b.lhs_matches(row) {
            continue;
        }
        let rhs = row[b.rhs_col].clone();
        if rhs.is_null() {
            continue; // SQL COUNT(DISTINCT) ignores NULLs
        }
        groups.entry(b.lhs_key(row)).or_default().push((id, rhs));
    }
    groups
}

/// Does a group (non-NULL RHS members) constitute a violation?
pub fn group_violates(rows: &[(RowId, Value)]) -> bool {
    if rows.len() < 2 {
        return false;
    }
    let first = &rows[0].1;
    rows[1..].iter().any(|(_, v)| !v.strong_eq(first))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd::parse::parse_cfds;
    use minidb::Schema;

    fn customer_table(rows: &[[&str; 7]]) -> Table {
        let schema = Schema::of_strings(&["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"]);
        let mut t = Table::new("customer", schema);
        for r in rows {
            t.insert(r.iter().map(|v| Value::str(*v)).collect())
                .unwrap();
        }
        t
    }

    fn paper_cfds() -> Vec<Cfd> {
        parse_cfds(
            "customer: [CNT, ZIP] -> [CITY]\n\
             customer: [CNT='UK', ZIP=_] -> [STR=_]\n\
             customer: [CC] -> [CNT]\n\
             customer: [CC='44'] -> [CNT='UK']",
        )
        .unwrap()
    }

    #[test]
    fn clean_table_has_no_violations() {
        let t = customer_table(&[
            ["mike", "UK", "EDI", "EH4", "High St", "44", "131"],
            ["rick", "US", "NYC", "012", "Oak Ave", "01", "212"],
        ]);
        let r = detect_native(&t, &paper_cfds()).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn detects_single_tuple_violation_of_phi4() {
        let t = customer_table(&[["joe", "US", "NYC", "012", "Oak", "44", "212"]]);
        let r = detect_native(&t, &paper_cfds()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.per_cfd.get(&3), Some(&1));
        assert_eq!(r.vio_of(RowId(0)), 1);
    }

    #[test]
    fn detects_multi_tuple_fd_violation() {
        // Same (CNT, ZIP), different CITY: violates φ1.
        let t = customer_table(&[
            ["a", "UK", "EDI", "EH4", "High St", "44", "131"],
            ["b", "UK", "LDN", "EH4", "High St", "44", "131"],
        ]);
        let r = detect_native(&t, &paper_cfds()).unwrap();
        assert_eq!(r.per_cfd.get(&0), Some(&1));
        assert_eq!(r.vio_of(RowId(0)), 1);
        assert_eq!(r.vio_of(RowId(1)), 1);
    }

    #[test]
    fn conditional_scope_limits_variable_cfd() {
        // Same ZIP, different STR — only a violation for UK (φ2).
        let uk = customer_table(&[
            ["a", "UK", "EDI", "EH4", "High St", "44", "131"],
            ["b", "UK", "EDI", "EH4", "Main St", "44", "131"],
        ]);
        let us = customer_table(&[
            ["a", "US", "NYC", "012", "High St", "01", "212"],
            ["b", "US", "NYC", "012", "Main St", "01", "212"],
        ]);
        let cfds = paper_cfds();
        assert_eq!(detect_native(&uk, &cfds).unwrap().per_cfd.get(&1), Some(&1));
        assert_eq!(detect_native(&us, &cfds).unwrap().per_cfd.get(&1), None);
    }

    #[test]
    fn null_rhs_members_are_ignored() {
        let schema = Schema::of_strings(&["A", "B"]);
        let mut t = Table::new("r", schema);
        t.insert(vec![Value::str("k"), Value::str("x")]).unwrap();
        t.insert(vec![Value::str("k"), Value::Null]).unwrap();
        let cfds = parse_cfds("r: [A] -> [B]").unwrap();
        let r = detect_native(&t, &cfds).unwrap();
        assert!(r.is_empty(), "NULL must not conflict with 'x'");
        // But two distinct non-null values do violate.
        t.insert(vec![Value::str("k"), Value::str("y")]).unwrap();
        let r = detect_native(&t, &cfds).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn vio_counts_partner_cardinality() {
        // Group of 4 on φ1: cities {EDI×3, LDN×1}.
        let t = customer_table(&[
            ["a", "UK", "EDI", "EH4", "s", "44", "131"],
            ["b", "UK", "EDI", "EH4", "s", "44", "131"],
            ["c", "UK", "EDI", "EH4", "s", "44", "131"],
            ["d", "UK", "LDN", "EH4", "s", "44", "131"],
        ]);
        let cfds = parse_cfds("customer: [CNT, ZIP] -> [CITY]").unwrap();
        let r = detect_native(&t, &cfds).unwrap();
        assert_eq!(r.vio_of(RowId(0)), 1);
        assert_eq!(r.vio_of(RowId(3)), 3);
    }

    #[test]
    fn multiple_cfds_accumulate_vio() {
        // Row violates φ4 (CC=44 but CNT=US) and joins a φ1 violation.
        let t = customer_table(&[
            ["a", "US", "NYC", "Z1", "s", "44", "131"],
            ["b", "US", "CHI", "Z1", "s", "01", "131"],
        ]);
        let r = detect_native(&t, &paper_cfds()).unwrap();
        // Row 0: single (φ4) + multi partner (φ1) + multi partner (φ3 group
        // CC=44? no: different CC) …
        assert_eq!(r.vio_of(RowId(0)), 2);
        assert_eq!(r.vio_of(RowId(1)), 1);
    }
}
