//! A fast, non-cryptographic hasher (the rustc-hash / FxHash construction:
//! rotate, xor, multiply per word), shared by the detection hot paths: the
//! per-row `vio` tally here and the dictionary interning / group maps in
//! `colstore`. SipHash shows up prominently in profiles on these maps, and
//! FxHash is the standard replacement when HashDoS resistance is
//! irrelevant — all inputs are the operator's own table data.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-hash word hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
            self.add(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_hash_equal() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b"ab"), h(b"ba"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get("k42"), Some(&42));
    }
}
