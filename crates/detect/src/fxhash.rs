//! A fast, non-cryptographic hasher (the rustc-hash / FxHash construction:
//! rotate, xor, multiply per word), shared by the detection hot paths: the
//! per-row `vio` tally here and the dictionary interning / group maps in
//! `colstore`. SipHash shows up prominently in profiles on these maps, and
//! FxHash is the standard replacement when HashDoS resistance is
//! irrelevant — all inputs are the operator's own table data.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Distinct keys a [`DistinctCounter`] probes linearly before spilling to
/// a hash index. Violating groups typically disagree on a handful of RHS
/// values, where scanning a counted vec beats hashing every member.
const LINEAR_MAX: usize = 16;

/// Distinct-key counter for the per-group counting passes of the
/// detection hot paths: a linear counted vec for the typical
/// few-distinct-values case (no hashing per member), spilling to an
/// [`FxHashMap`] index past [`LINEAR_MAX`] so high-cardinality inputs
/// stay `O(members)`. Slot indices are assigned in first-seen order and
/// stay stable across the spill.
///
/// One implementation for the three call sites that used to hand-roll it:
/// `ViolationReport::push_multi` (counting `&Value`), and colstore's
/// member decoding and partial-group export (counting `u32` codes).
#[derive(Debug, Clone, Default)]
pub struct DistinctCounter<K> {
    counts: Vec<(K, u64)>,
    hashed: Option<FxHashMap<K, u32>>,
}

impl<K: Copy + Eq + std::hash::Hash> DistinctCounter<K> {
    /// Empty counter.
    pub fn new() -> DistinctCounter<K> {
        DistinctCounter {
            counts: Vec::new(),
            hashed: None,
        }
    }

    /// Count one occurrence of `k`; returns its stable slot index.
    pub fn add(&mut self, k: K) -> u32 {
        let DistinctCounter { counts, hashed } = self;
        let idx = match hashed {
            Some(map) => *map.entry(k).or_insert_with(|| {
                counts.push((k, 0));
                (counts.len() - 1) as u32
            }),
            None => match counts.iter().position(|(c, _)| *c == k) {
                Some(i) => i as u32,
                None if counts.len() < LINEAR_MAX => {
                    counts.push((k, 0));
                    (counts.len() - 1) as u32
                }
                None => {
                    let mut map: FxHashMap<K, u32> = counts
                        .iter()
                        .enumerate()
                        .map(|(i, (c, _))| (*c, i as u32))
                        .collect();
                    counts.push((k, 0));
                    let idx = (counts.len() - 1) as u32;
                    map.insert(k, idx);
                    *hashed = Some(map);
                    idx
                }
            },
        };
        counts[idx as usize].1 += 1;
        idx
    }

    /// Occurrences counted for `k` (0 if never added).
    pub fn count_of(&self, k: K) -> u64 {
        let at = match &self.hashed {
            Some(map) => map.get(&k).map(|&i| i as usize),
            None => self.counts.iter().position(|(c, _)| *c == k),
        };
        at.map_or(0, |i| self.counts[i].1)
    }

    /// Occurrences counted in slot `idx` (as returned by [`Self::add`]).
    pub fn count_at(&self, idx: u32) -> u64 {
        self.counts[idx as usize].1
    }

    /// Number of distinct keys seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `(key, count)` slots, in first-seen order.
    pub fn into_counts(self) -> Vec<(K, u64)> {
        self.counts
    }
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-hash word hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
            self.add(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_inputs_hash_equal() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"hellp"));
        assert_ne!(h(b"ab"), h(b"ba"));
    }

    #[test]
    fn distinct_counter_spills_past_linear_max() {
        let mut c: super::DistinctCounter<u32> = super::DistinctCounter::new();
        // 40 distinct keys force the hash spill; every key added twice.
        let idxs: Vec<u32> = (0..40u32).map(|k| c.add(k)).collect();
        for k in 0..40u32 {
            assert_eq!(c.add(k), idxs[k as usize], "indices stable across spill");
        }
        assert_eq!(c.distinct(), 40);
        assert_eq!(c.count_of(7), 2);
        assert_eq!(c.count_at(idxs[7]), 2);
        assert_eq!(c.count_of(999), 0);
        let counts = c.into_counts();
        assert_eq!(counts[0], (0, 2), "first-seen order preserved");
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get("k42"), Some(&42));
    }
}
