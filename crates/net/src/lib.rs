//! # Network service tier
//!
//! Turns any [`QualityBackend`](api::QualityBackend) into a many-client
//! TCP service, in two layers:
//!
//! * [`ConcurrentEngine`] — the concurrency layer. One writer thread
//!   owns the backend and applies mutating requests in arrival order
//!   through the serial [`api::wire::dispatch`]; after each coalesced
//!   batch it captures an immutable [`EpochState`] (ready-made detect /
//!   audit / report / len / capabilities answers) and publishes it via
//!   an atomically swapped `Arc` with epoch-pinned reclamation. Readers
//!   ([`EngineHandle`]) serve every read-only request from the latest
//!   epoch with **zero lock acquisitions** — a pinned atomic load plus a
//!   clone (pinned by a code-structure test over `read.rs`). Writes ride
//!   a bounded queue with per-request reply channels; replies follow the
//!   covering publish, so each client reads its own writes.
//! * [`NetServer`] / [`Client`] — the transport layer. `std::net` only
//!   (no async runtime): a nonblocking accept loop feeds a worker pool;
//!   each connection speaks newline-delimited [`api::dispatch_line`]
//!   framing with pipelining, explicit backpressure errors, idle
//!   timeouts, and oversize resynchronization. [`NetServer::shutdown`]
//!   stops accepting, drains the writer queue, and hands the backend
//!   back with every accepted write applied.
//!
//! The split between read-only and mutating requests lives on the
//! protocol itself — [`api::Request::is_read_only`] — so the engine,
//! the transport, and the telemetry agree on it by construction.

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod publish;
pub mod read;
pub mod server;

pub use client::Client;
pub use engine::{ConcurrentEngine, EngineConfig, EngineHandle, EpochState};
pub use read::Published;
pub use server::{NetConfig, NetServer};
