//! [`ConcurrentEngine`]: single-writer / lock-free multi-reader service
//! core over any [`QualityBackend`].
//!
//! The serial trait takes `&mut self` even for reads (`detect` / `audit`
//! memoize), so readers cannot share the backend directly. Instead the
//! one writer thread *prepares the answers at publish time*: after each
//! coalesced batch of mutations it refreshes detection, audit, the last
//! report, the row count and the capabilities, bundles them into an
//! immutable [`EpochState`], and publishes it through the lock-free
//! [`Published`] cell. A read is then a pinned atomic load plus a clone
//! of a ready-made [`Response`] — by construction every read equals the
//! serial answer at *some* published write prefix (`writes_applied`
//! names which one).
//!
//! Writes funnel through a bounded queue into the writer thread, which
//! dispatches them through the exact same [`api::wire::dispatch`] the
//! serial service loop uses — serialization semantics are therefore
//! identical to the serial backend. Replies are sent only *after* the
//! next epoch is published, so a client that received its write reply is
//! guaranteed that its own subsequent reads observe the write
//! (read-your-writes per connection).
//!
//! One deliberate divergence from a serial request stream: `LastReport`
//! answers from the epoch's refreshed report, so after a mutation it
//! returns the new report where a serial backend would say "no current
//! report" until the next explicit `Detect`. The report it returns is
//! always exactly the epoch's detect answer.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use api::wire::{dispatch, AuditSummary, ReportSummary, Response};
use api::{Capabilities, QualityBackend, Request};
use cfd::CfdError;

use crate::publish::Reclaimer;
use crate::read::{serve_read, Published};

/// Everything a read needs, frozen at one publication point.
pub struct EpochState {
    /// Publication sequence number (0 = the pre-write initial state).
    pub epoch: u64,
    /// Write jobs the writer had attempted (successfully or not) when
    /// this state was captured — the index of the serial prefix this
    /// state is equivalent to. The torn-state tests replay the same
    /// prefix serially and demand equality.
    pub writes_applied: u64,
    /// The backend's capabilities (static per backend in practice).
    pub caps: Capabilities,
    /// Ready answer for `Request::Detect`.
    pub detect: Response,
    /// Ready answer for `Request::Audit`.
    pub audit: Response,
    /// The refreshed detection summary (`None` only when detection
    /// itself failed for this epoch).
    pub last_report: Option<ReportSummary>,
    /// Live row count.
    pub len: usize,
}

/// Capture the current [`EpochState`] off the backend, mirroring exactly
/// how [`api::wire::dispatch`] builds each response.
fn capture<B: QualityBackend>(backend: &mut B, epoch: u64, writes_applied: u64) -> EpochState {
    fn err(e: CfdError) -> Response {
        Response::Error {
            message: e.to_string(),
        }
    }
    let detect = match backend.detect() {
        Ok(report) => Response::Report(ReportSummary::of(&report)),
        Err(e) => err(e),
    };
    let audit = match backend.audit() {
        Ok(report) => Response::Audited(AuditSummary::of(&report)),
        Err(e) => err(e),
    };
    // After the refresh above, the cached report *is* this epoch's
    // detect answer (when detection succeeded).
    let last_report = backend.last_report().map(|r| ReportSummary::of(&r));
    EpochState {
        epoch,
        writes_applied,
        caps: backend.capabilities(),
        detect,
        audit,
        last_report,
        len: backend.len(),
    }
}

/// One queued unit of writer work.
enum Job {
    /// A mutating request plus where to send its reply.
    Request(Request, mpsc::Sender<Response>),
    /// Drain the queue, publish, and exit.
    Stop,
}

/// Shared between the writer, every handle, and the engine front.
struct Shared {
    published: Published<EpochState>,
    /// Epochs published over the engine's lifetime (mirrors the
    /// `net_epochs_published_total` counter without a registry lookup).
    epochs: AtomicU64,
}

/// The concurrent service core. Construction spawns the writer thread;
/// [`ConcurrentEngine::shutdown`] drains it and returns the backend.
pub struct ConcurrentEngine<B> {
    shared: Arc<Shared>,
    jobs: mpsc::SyncSender<Job>,
    writer: JoinHandle<B>,
}

/// Tuning for [`ConcurrentEngine::new`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bound on queued-but-unapplied write jobs; a full queue answers
    /// `Response::Error` (backpressure) instead of growing.
    pub queue_depth: usize,
    /// Reader slots — the maximum number of simultaneously live
    /// [`EngineHandle`]s.
    pub max_readers: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            queue_depth: 256,
            max_readers: 64,
        }
    }
}

impl<B: QualityBackend + Send + 'static> ConcurrentEngine<B> {
    /// Publish the backend's current state as epoch 0 and start the
    /// writer thread.
    pub fn new(mut backend: B, config: EngineConfig) -> ConcurrentEngine<B> {
        let initial = capture(&mut backend, 0, 0);
        let shared = Arc::new(Shared {
            published: Published::new(Arc::new(initial), config.max_readers.max(1)),
            epochs: AtomicU64::new(0),
        });
        let (jobs, rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sdq-net-writer".into())
                .spawn(move || writer_loop(backend, shared, rx))
                .expect("spawn writer thread")
        };
        ConcurrentEngine {
            shared,
            jobs,
            writer,
        }
    }

    /// A new reader/writer handle, or `None` when every reader slot is
    /// taken (raise [`EngineConfig::max_readers`]).
    pub fn handle(&self) -> Option<EngineHandle> {
        let slot = self.shared.published.register()?;
        Some(EngineHandle {
            shared: Arc::clone(&self.shared),
            jobs: self.jobs.clone(),
            slot,
        })
    }

    /// Epochs published so far.
    pub fn epochs_published(&self) -> u64 {
        self.shared.epochs.load(Relaxed)
    }

    /// Stop the writer: queued writes are drained, applied, and
    /// published, then the thread exits and the backend comes back —
    /// with every accepted write applied. Outstanding handles keep
    /// serving reads from the final epoch; their writes are refused.
    pub fn shutdown(self) -> B {
        let _ = self.jobs.send(Job::Stop);
        self.writer.join().expect("writer thread panicked")
    }
}

/// The writer thread: apply writes in arrival order through the serial
/// `dispatch`, publish one epoch per coalesced batch, reply after
/// publishing.
fn writer_loop<B: QualityBackend>(
    mut backend: B,
    shared: Arc<Shared>,
    rx: mpsc::Receiver<Job>,
) -> B {
    let published_total = obs::counter("net_epochs_published_total");
    let mut reclaimer: Reclaimer<EpochState> = Reclaimer::new();
    let mut epoch: u64 = 0;
    let mut writes_applied: u64 = 0;
    let mut stop = false;
    while !stop {
        // Block for the first job, then coalesce everything already
        // queued into one batch → one refresh + publish for the lot.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break, // engine front dropped without Stop
        };
        let mut replies = Vec::new();
        let mut job = Some(first);
        loop {
            match job.take() {
                Some(Job::Request(request, reply)) => {
                    writes_applied += 1;
                    let response = dispatch(&mut backend, request);
                    replies.push((reply, response));
                }
                Some(Job::Stop) => stop = true,
                None => unreachable!(),
            }
            match rx.try_recv() {
                Ok(next) => job = Some(next),
                Err(_) => break,
            }
        }
        epoch += 1;
        let state = capture(&mut backend, epoch, writes_applied);
        let (now, tag, old) = shared.published.publish(Arc::new(state));
        debug_assert_eq!(now, epoch, "single writer owns the epoch counter");
        reclaimer.retire(tag, old);
        reclaimer.collect(&shared.published);
        shared.epochs.fetch_add(1, Relaxed);
        published_total.inc();
        // Reply *after* publish: a client holding its write reply reads
        // an epoch that includes the write.
        for (reply, response) in replies {
            let _ = reply.send(response);
        }
    }
    reclaimer.drain(&shared.published);
    backend
}

/// One registered client of a [`ConcurrentEngine`]: lock-free reads from
/// the latest epoch, writes queued to the single writer.
pub struct EngineHandle {
    shared: Arc<Shared>,
    jobs: mpsc::SyncSender<Job>,
    slot: usize,
}

impl EngineHandle {
    /// The latest published state — the lock-free hot path.
    pub fn state(&self) -> Arc<EpochState> {
        self.shared.published.load(self.slot)
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.published.epoch()
    }

    /// Serve one request with the read/write split: read-only kinds
    /// answer from the latest epoch without touching the writer;
    /// mutating kinds enqueue and block for the post-publish reply.
    pub fn request(&self, request: Request) -> Response {
        if request.is_read_only() {
            let state = self.state();
            if let Some(response) = serve_read(&state, &request) {
                return response;
            }
            return serve_introspection(&state, &request);
        }
        match self.submit_write(request) {
            Ok(reply) => recv_reply(&reply),
            Err(busy) => busy,
        }
    }

    /// Queue a mutating request without waiting for the reply; the
    /// transport uses this to pipeline writes from one connection.
    /// `Err` carries the ready backpressure / shutdown error response.
    pub fn submit_write(&self, request: Request) -> Result<mpsc::Receiver<Response>, Response> {
        debug_assert!(!request.is_read_only(), "reads never visit the queue");
        let (reply, rx) = mpsc::channel();
        match self.jobs.try_send(Job::Request(request, reply)) {
            Ok(()) => Ok(rx),
            Err(mpsc::TrySendError::Full(_)) => Err(Response::Error {
                message: "write queue is full: service is applying a backlog, retry".into(),
            }),
            Err(mpsc::TrySendError::Disconnected(_)) => Err(Response::Error {
                message: "service is shutting down".into(),
            }),
        }
    }

    /// Another handle on the same engine (its own reader slot), or
    /// `None` when the slots are exhausted.
    pub fn try_clone(&self) -> Option<EngineHandle> {
        let slot = self.shared.published.register()?;
        Some(EngineHandle {
            shared: Arc::clone(&self.shared),
            jobs: self.jobs.clone(),
            slot,
        })
    }
}

/// Wait for a queued write's reply.
pub fn recv_reply(reply: &mpsc::Receiver<Response>) -> Response {
    reply.recv().unwrap_or(Response::Error {
        message: "service is shutting down".into(),
    })
}

/// `Metrics` / `Trace`: the only reads not served from the epoch state —
/// they snapshot the live process-wide `obs` registry / flight recorder
/// (capability-gated, mirroring the backend defaults' exact refusals).
fn serve_introspection(state: &EpochState, request: &Request) -> Response {
    fn err(e: CfdError) -> Response {
        Response::Error {
            message: e.to_string(),
        }
    }
    match request {
        Request::Metrics => {
            if !state.caps.metrics {
                return err(CfdError::Unsupported(format!(
                    "backend '{}' does not expose metrics",
                    state.caps.backend
                )));
            }
            Response::Metrics(obs::snapshot())
        }
        Request::Trace => {
            if !state.caps.trace {
                return err(CfdError::Unsupported(format!(
                    "backend '{}' does not expose request traces",
                    state.caps.backend
                )));
            }
            match obs::trace::last_trace() {
                Some(report) => Response::Trace(report),
                None => err(CfdError::Unsupported(
                    "no completed request trace captured (enable SDQ_TRACE=1 or \
                     obs::trace::set_enabled, then run a request)"
                        .into(),
                )),
            }
        }
        other => err(CfdError::Unsupported(format!(
            "request '{}' is not a read",
            other.kind_str()
        ))),
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        self.shared.published.release(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use api::{Mutation, MutationBatch};
    use cfd::CfdResult;
    use minidb::{RowId, Value};

    /// The read path must stay free of blocking synchronization: the
    /// whole of `read.rs` (publication cell + epoch-state serving) may
    /// use atomics only. Token scan over the source — a new `Mutex` /
    /// `RwLock` / `Condvar` / `.lock(` / channel in that file is a
    /// structural regression, not a style choice.
    #[test]
    fn read_path_is_lock_free_by_construction() {
        let src = include_str!("read.rs");
        for forbidden in ["Mutex", "RwLock", "Condvar", ".lock(", "mpsc", "park"] {
            assert!(
                !src.contains(forbidden),
                "read.rs must not use `{forbidden}`: the read path is lock-free"
            );
        }
        assert!(src.contains("AtomicPtr"), "the publication cell is atomic");
    }

    /// Toy backend: a grow-only list of i64 rows, "detection" counts
    /// negative values. Deterministic, cheap, and stateful enough to
    /// catch torn epochs.
    #[derive(Default)]
    struct Counting {
        rows: Vec<Option<i64>>,
    }

    impl Counting {
        fn live(&self) -> impl Iterator<Item = i64> + '_ {
            self.rows.iter().flatten().copied()
        }
    }

    impl QualityBackend for Counting {
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                backend: "counting".into(),
                repair: false,
                streaming: false,
                shards: 1,
                metrics: false,
                trace: false,
            }
        }
        fn register_cfds(&mut self, _text: &str) -> CfdResult<usize> {
            Ok(0)
        }
        fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
            let v = match row.first() {
                Some(Value::Int(v)) => *v,
                _ => return Err(CfdError::Malformed("int rows only".into())),
            };
            self.rows.push(Some(v));
            Ok(RowId(self.rows.len() as u64 - 1))
        }
        fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>> {
            self.rows
                .get_mut(row.index())
                .and_then(Option::take)
                .map(|v| vec![Value::Int(v)])
                .ok_or_else(|| CfdError::Malformed(format!("no row {}", row.0)))
        }
        fn update_cell(&mut self, row: RowId, _col: usize, value: Value) -> CfdResult<Value> {
            let slot = self
                .rows
                .get_mut(row.index())
                .and_then(Option::as_mut)
                .ok_or_else(|| CfdError::Malformed(format!("no row {}", row.0)))?;
            let Value::Int(v) = value else {
                return Err(CfdError::Malformed("int rows only".into()));
            };
            Ok(Value::Int(std::mem::replace(slot, v)))
        }
        fn detect(&mut self) -> CfdResult<detect::ViolationReport> {
            let mut report = detect::ViolationReport::default();
            for (i, v) in self.rows.iter().enumerate() {
                if matches!(v, Some(v) if *v < 0) {
                    report.push_single(0, RowId(i as u64));
                }
            }
            Ok(report)
        }
        fn audit(&mut self) -> CfdResult<audit::QualityReport> {
            Err(CfdError::Unsupported("counting".into()))
        }
        fn last_report(&self) -> Option<detect::ViolationReport> {
            None
        }
        fn len(&self) -> usize {
            self.live().count()
        }
    }

    fn insert(v: i64) -> Request {
        Request::Insert {
            row: vec![Value::Int(v)],
        }
    }

    #[test]
    fn reads_see_consistent_epochs_while_writes_stream() {
        let engine = ConcurrentEngine::new(Counting::default(), EngineConfig::default());
        let writer = engine.handle().unwrap();
        let reader = engine.handle().unwrap();

        const WRITES: i64 = 300;
        let pump = std::thread::spawn(move || {
            for v in 0..WRITES {
                // Alternate sign so the violation count moves with the
                // prefix length.
                let signed = if v % 2 == 0 { v } else { -v };
                match writer.request(insert(signed)) {
                    Response::Inserted { .. } => {}
                    other => panic!("insert refused: {other:?}"),
                }
            }
        });

        // Every observed state must equal the serial prefix it names:
        // `writes_applied` inserts → len == prefix, violations == count
        // of negatives in the prefix.
        let mut last_epoch = 0;
        loop {
            let state = reader.state();
            assert!(state.epoch >= last_epoch, "epochs are monotone");
            last_epoch = state.epoch;
            let prefix = state.writes_applied as i64;
            assert_eq!(state.len, prefix as usize, "len is a serial prefix");
            let negatives = (0..prefix).filter(|v| v % 2 == 1).count();
            match &state.detect {
                Response::Report(s) => {
                    assert_eq!(s.dirty_rows, negatives, "no torn detect state")
                }
                other => panic!("detect answer: {other:?}"),
            }
            if prefix == WRITES {
                break;
            }
            std::thread::yield_now();
        }
        pump.join().unwrap();

        let backend = engine.shutdown();
        assert_eq!(backend.rows.len(), WRITES as usize, "all writes applied");
    }

    #[test]
    fn replies_arrive_after_their_epoch_is_published() {
        let engine = ConcurrentEngine::new(Counting::default(), EngineConfig::default());
        let h = engine.handle().unwrap();
        for v in 0..50 {
            assert!(matches!(h.request(insert(v)), Response::Inserted { .. }));
            // Read-your-writes: the reply means the covering epoch is out.
            let state = h.state();
            assert!(state.len as i64 > v, "write {v} visible after its reply");
        }
        engine.shutdown();
    }

    #[test]
    fn batch_and_failed_writes_match_serial_dispatch() {
        let engine = ConcurrentEngine::new(Counting::default(), EngineConfig::default());
        let h = engine.handle().unwrap();
        let batch = MutationBatch::from(vec![
            Mutation::Insert(vec![Value::Int(1)]),
            Mutation::Insert(vec![Value::Int(-2)]),
            Mutation::SetCell {
                row: RowId(0),
                col: 0,
                value: Value::Int(5),
            },
        ]);
        let concurrent = [
            h.request(Request::ApplyBatch {
                batch: batch.clone(),
            }),
            h.request(Request::Delete { row: RowId(99) }), // fails
            h.request(insert(7)),
            h.request(Request::Detect),
            h.request(Request::Len),
            h.request(Request::LastReport),
        ];
        drop(h);
        engine.shutdown();

        let mut serial = Counting::default();
        let expect = [
            dispatch(&mut serial, Request::ApplyBatch { batch }),
            dispatch(&mut serial, Request::Delete { row: RowId(99) }),
            dispatch(&mut serial, insert(7)),
            dispatch(&mut serial, Request::Detect),
            dispatch(&mut serial, Request::Len),
            dispatch(&mut serial, Request::LastReport),
        ];
        // (`Counting::last_report` is always `None`, so the engine's
        // refreshed-report divergence is invisible here — the service
        // tests cover it against the real backends.)
        assert_eq!(concurrent, expect);
    }

    #[test]
    fn backpressure_answers_error_instead_of_queueing_unboundedly() {
        // A rendezvous-depth queue plus a writer stalled on its first
        // job: the next try_send must see Full.
        let engine = ConcurrentEngine::new(
            Counting::default(),
            EngineConfig {
                queue_depth: 1,
                max_readers: 4,
            },
        );
        let h = engine.handle().unwrap();
        let mut saw_backpressure = false;
        let mut pending = Vec::new();
        for v in 0..1_000 {
            match h.submit_write(insert(v)) {
                Ok(rx) => pending.push(rx),
                Err(Response::Error { message }) => {
                    assert!(message.contains("write queue is full"), "{message}");
                    saw_backpressure = true;
                    break;
                }
                Err(other) => panic!("unexpected refusal: {other:?}"),
            }
        }
        assert!(saw_backpressure, "a depth-1 queue must eventually refuse");
        for rx in pending {
            assert!(matches!(recv_reply(&rx), Response::Inserted { .. }));
        }
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_writes() {
        let engine = ConcurrentEngine::new(Counting::default(), EngineConfig::default());
        let h = engine.handle().unwrap();
        let pending: Vec<_> = (0..100)
            .map(|v| h.submit_write(insert(v)).expect("queue has room"))
            .collect();
        let backend = engine.shutdown();
        assert_eq!(backend.rows.len(), 100, "accepted writes survive shutdown");
        for rx in pending {
            assert!(matches!(recv_reply(&rx), Response::Inserted { .. }));
        }
        // The surviving handle still reads the final epoch but cannot
        // write.
        assert_eq!(h.state().len, 100);
        assert!(matches!(h.request(insert(1)), Response::Error { .. }));
    }

    #[test]
    fn handle_capacity_is_enforced_and_recycled() {
        let engine = ConcurrentEngine::new(
            Counting::default(),
            EngineConfig {
                queue_depth: 8,
                max_readers: 2,
            },
        );
        let a = engine.handle().unwrap();
        let b = engine.handle().unwrap();
        assert!(engine.handle().is_none(), "slots exhausted");
        assert!(a.try_clone().is_none());
        drop(b);
        let c = a.try_clone().expect("released slot is reusable");
        assert_eq!(c.state().epoch, 0);
        drop(a);
        drop(c);
        engine.shutdown();
    }
}
