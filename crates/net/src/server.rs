//! The TCP transport: newline-framed `Request`/`Response` over loopback
//! or LAN, served by a worker pool on top of [`ConcurrentEngine`].
//!
//! Framing is exactly the serial service loop's: one encoded request per
//! line, one encoded response per line, in frame order. Clients may
//! *pipeline* — send many frames without waiting — and the server reads
//! ahead: buffered write frames are queued to the single writer back to
//! back (so one writer batch absorbs them), and their replies are
//! flushed, still in order, before any later read is answered.
//!
//! Backpressure is explicit, never silent: a connection beyond
//! `max_conns` gets one encoded `Response::Error` frame and a close; a
//! write beyond the engine's queue depth gets `Response::Error` in its
//! frame's response slot. Oversized frames (> `max_frame` bytes before a
//! newline) get an error frame and the connection resynchronizes at the
//! next newline. An idle connection (no bytes for `idle_timeout`) is
//! closed — quietly between frames, with an error frame mid-frame.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use api::wire::{Request, Response, MAX_FRAME_BYTES};
use api::QualityBackend;
use obs::{Counter, Gauge};

use crate::engine::{recv_reply, ConcurrentEngine, EngineConfig, EngineHandle};

/// Transport tuning. [`NetConfig::from_env`] reads the `SDQ_*` knobs the
/// README documents; [`Default`] is `from_env` with nothing set.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address (`SDQ_LISTEN`, default `127.0.0.1:7744`; use port
    /// 0 to let the OS pick — read it back with [`NetServer::local_addr`]).
    pub addr: String,
    /// Worker threads, i.e. connections served simultaneously
    /// (`SDQ_NET_THREADS`, default 4).
    pub net_threads: usize,
    /// Accepted-and-not-yet-closed connection cap (`SDQ_MAX_CONNS`,
    /// default 64); beyond it a connection gets one error frame.
    pub max_conns: usize,
    /// Bound on queued write jobs (`SDQ_QUEUE_DEPTH`, default 256).
    pub queue_depth: usize,
    /// Close a connection silent for this long (`SDQ_NET_IDLE_MS`,
    /// default 30 000 ms).
    pub idle_timeout: Duration,
    /// Longest accepted frame in bytes (fixed to the protocol's
    /// [`MAX_FRAME_BYTES`]).
    pub max_frame: usize,
}

impl NetConfig {
    /// Read the `SDQ_LISTEN` / `SDQ_NET_THREADS` / `SDQ_MAX_CONNS` /
    /// `SDQ_QUEUE_DEPTH` / `SDQ_NET_IDLE_MS` environment knobs, with the
    /// documented defaults for anything unset. A malformed value warns
    /// loudly once (see [`obs::env`]) before the default applies.
    pub fn from_env() -> NetConfig {
        fn num(name: &'static str, default: usize) -> usize {
            obs::env::positive(name).unwrap_or(default)
        }
        NetConfig {
            addr: obs::env::string("SDQ_LISTEN").unwrap_or_else(|| "127.0.0.1:7744".into()),
            net_threads: num("SDQ_NET_THREADS", 4),
            max_conns: num("SDQ_MAX_CONNS", 64),
            queue_depth: num("SDQ_QUEUE_DEPTH", 256),
            idle_timeout: Duration::from_millis(num("SDQ_NET_IDLE_MS", 30_000) as u64),
            max_frame: MAX_FRAME_BYTES,
        }
    }
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig::from_env()
    }
}

/// Pre-resolved telemetry handles — one registry lookup per process, one
/// atomic increment per event afterwards (same idiom as the colstore's
/// cache counters).
struct NetObs {
    connections_total: Arc<Counter>,
    connections_open: Arc<Gauge>,
    backpressure_total: Arc<Counter>,
    /// `net_requests_total{kind="…"}` per wire op, plus a slot for
    /// frames that never decoded into a request.
    requests: Vec<(&'static str, Arc<Counter>)>,
}

/// Wire op names, mirrored from `Request::kind_str` (the wire tests pin
/// the inventory); `"invalid"` counts undecodable frames.
const KINDS: [&str; 14] = [
    "register_cfds",
    "insert",
    "delete",
    "update_cell",
    "apply_batch",
    "detect",
    "audit",
    "repair",
    "last_report",
    "len",
    "capabilities",
    "metrics",
    "trace",
    "invalid",
];

fn net_obs() -> &'static NetObs {
    static OBS: OnceLock<NetObs> = OnceLock::new();
    OBS.get_or_init(|| NetObs {
        connections_total: obs::counter("net_connections_total"),
        connections_open: obs::gauge("net_connections_open"),
        backpressure_total: obs::counter("net_backpressure_total"),
        requests: KINDS
            .iter()
            .map(|k| {
                (
                    *k,
                    obs::counter(&format!("net_requests_total{{kind=\"{k}\"}}")),
                )
            })
            .collect(),
    })
}

fn count_request(kind: &str) {
    let o = net_obs();
    if let Some((_, c)) = o.requests.iter().find(|(k, _)| *k == kind) {
        c.inc();
    }
}

/// A running TCP service over one backend. Dropping without
/// [`NetServer::shutdown`] aborts the accept loop but leaks the backend;
/// call `shutdown` to drain the writer queue and take the backend back.
pub struct NetServer<B> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    engine: ConcurrentEngine<B>,
}

impl<B: QualityBackend + Send + 'static> NetServer<B> {
    /// Bind `config.addr`, publish the backend's state as epoch 0, and
    /// start accepting connections.
    pub fn serve(backend: B, config: NetConfig) -> std::io::Result<NetServer<B>> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let engine = ConcurrentEngine::new(
            backend,
            EngineConfig {
                queue_depth: config.queue_depth,
                // Workers plus headroom for in-process handles
                // (`NetServer::handle`) used by embedding code.
                max_readers: config.net_threads + 8,
            },
        );
        let stop = Arc::new(AtomicBool::new(false));
        let open = Arc::new(AtomicUsize::new(0));
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let workers: Vec<JoinHandle<()>> = (0..config.net_threads.max(1))
            .map(|i| {
                let handle = engine.handle().expect("a reader slot per worker");
                let conn_rx = Arc::clone(&conn_rx);
                let open = Arc::clone(&open);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("sdq-net-worker-{i}"))
                    .spawn(move || loop {
                        let next = {
                            let rx = conn_rx.lock().expect("connection queue");
                            rx.recv()
                        };
                        match next {
                            Ok(stream) => {
                                serve_connection(stream, &handle, &config);
                                open.fetch_sub(1, SeqCst);
                                net_obs().connections_open.add(-1);
                            }
                            Err(_) => return, // accept loop is gone
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let accept = {
            let stop = Arc::clone(&stop);
            let max_conns = config.max_conns.max(1);
            std::thread::Builder::new()
                .name("sdq-net-accept".into())
                .spawn(move || {
                    accept_loop(listener, conn_tx, stop, open, max_conns);
                })
                .expect("spawn accept loop")
        };

        Ok(NetServer {
            addr,
            stop,
            accept: Some(accept),
            workers,
            engine,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// An in-process [`EngineHandle`] on the served engine — what the
    /// embedding program (or a test) uses to read published epochs
    /// without a socket.
    pub fn handle(&self) -> Option<EngineHandle> {
        self.engine.handle()
    }

    /// Stop accepting, wait for in-flight connections to finish, drain
    /// the writer queue, and return the backend with every accepted
    /// write applied.
    pub fn shutdown(mut self) -> B {
        self.stop.store(true, SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop dropped the connection channel; each worker
        // exits once its current connection (if any) closes.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.engine.shutdown()
    }
}

fn accept_loop(
    listener: TcpListener,
    conn_tx: mpsc::Sender<TcpStream>,
    stop: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
    max_conns: usize,
) {
    while !stop.load(SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                net_obs().connections_total.inc();
                if open.load(SeqCst) >= max_conns {
                    net_obs().backpressure_total.inc();
                    refuse_connection(stream, max_conns);
                    continue;
                }
                open.fetch_add(1, SeqCst);
                net_obs().connections_open.add(1);
                if conn_tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Over-capacity connection: one explicit error frame, then close.
fn refuse_connection(stream: TcpStream, max_conns: usize) {
    let _ = stream.set_nonblocking(false);
    let mut stream = stream;
    let refusal = Response::Error {
        message: format!("too many connections (limit {max_conns}); retry later"),
    };
    let _ = write_frame(&mut stream, &refusal);
}

fn write_frame(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Incremental newline framing over a raw socket, with read-ahead (many
/// frames per `read`) and oversize resynchronization.
struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    start: usize,
    max_frame: usize,
    /// Discarding an oversized frame until its terminating newline.
    skipping: bool,
}

enum FrameEvent {
    /// A complete frame (without its newline).
    Frame(String),
    /// The frame under construction crossed `max_frame` — the caller
    /// answers with an error; subsequent bytes are discarded to the
    /// next newline.
    Oversized(usize),
}

impl FrameReader {
    fn new(max_frame: usize) -> FrameReader {
        FrameReader {
            buf: Vec::with_capacity(4096),
            start: 0,
            max_frame,
            skipping: false,
        }
    }

    /// Next event available from buffered bytes, if any.
    fn next_buffered(&mut self) -> Option<FrameEvent> {
        loop {
            let pending = &self.buf[self.start..];
            match pending.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    if self.skipping {
                        // Tail of an already-refused oversized frame.
                        self.start += nl + 1;
                        self.skipping = false;
                        continue;
                    }
                    if nl > self.max_frame {
                        // A complete frame can still be over the cap
                        // when it arrived faster than the incremental
                        // check below sampled it.
                        self.start += nl + 1;
                        return Some(FrameEvent::Oversized(nl));
                    }
                    let line = String::from_utf8_lossy(&pending[..nl]).into_owned();
                    self.start += nl + 1;
                    return Some(FrameEvent::Frame(line));
                }
                None => {
                    if !self.skipping && pending.len() > self.max_frame {
                        let seen = pending.len();
                        // Refuse now; drop what's buffered and discard
                        // until the newline arrives.
                        self.buf.clear();
                        self.start = 0;
                        self.skipping = true;
                        return Some(FrameEvent::Oversized(seen));
                    }
                    if self.skipping {
                        // Keep memory flat while discarding.
                        self.buf.clear();
                        self.start = 0;
                    }
                    return None;
                }
            }
        }
    }

    /// Pull more bytes off the socket. Returns the byte count (0 = EOF).
    fn fill(&mut self, stream: &mut TcpStream) -> std::io::Result<usize> {
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let mut chunk = [0u8; 16 * 1024];
        let n = stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Unterminated trailing bytes (a final frame the client forgot to
    /// newline-terminate before EOF), if any.
    fn take_partial(&mut self) -> Option<String> {
        if self.skipping || self.start >= self.buf.len() {
            return None;
        }
        let line = String::from_utf8_lossy(&self.buf[self.start..]).into_owned();
        self.buf.clear();
        self.start = 0;
        Some(line)
    }

    fn mid_frame(&self) -> bool {
        self.skipping || self.start < self.buf.len()
    }
}

/// Serve one connection to completion: frames in, responses out, in
/// frame order, with pipelined writes.
fn serve_connection(mut stream: TcpStream, handle: &EngineHandle, config: &NetConfig) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.idle_timeout));
    let mut reader = FrameReader::new(config.max_frame);
    // Reply receivers for pipelined (queued, unacknowledged) writes, in
    // frame order; flushed before any later response is written.
    let mut pending: Vec<Receiver<Response>> = Vec::new();
    loop {
        while let Some(event) = reader.next_buffered() {
            let served = match event {
                FrameEvent::Frame(line) => serve_frame(&line, handle, &mut pending, &mut stream),
                FrameEvent::Oversized(seen) => {
                    count_request("invalid");
                    net_obs().backpressure_total.inc();
                    flush_pending(&mut pending, &mut stream).and_then(|()| {
                        write_frame(
                            &mut stream,
                            &Response::Error {
                                message: format!(
                                    "frame too large: {seen}+ bytes exceeds the {} byte cap",
                                    config.max_frame
                                ),
                            },
                        )
                    })
                }
            };
            if served.is_err() {
                return; // client went away mid-write
            }
        }
        // Nothing left buffered: before blocking on the socket, flush
        // replies for every pipelined write.
        if flush_pending(&mut pending, &mut stream).is_err() {
            return;
        }
        match reader.fill(&mut stream) {
            Ok(0) => {
                // EOF. A trailing unterminated frame still gets served.
                if let Some(line) = reader.take_partial() {
                    let _ = serve_frame(&line, handle, &mut pending, &mut stream);
                    let _ = flush_pending(&mut pending, &mut stream);
                }
                return;
            }
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if reader.mid_frame() {
                    let _ = write_frame(
                        &mut stream,
                        &Response::Error {
                            message: "read timeout mid-frame; closing".into(),
                        },
                    );
                } // else: idle between frames — quiet close.
                return;
            }
            Err(_) => return,
        }
    }
}

/// Handle one complete frame. Reads answer immediately (after earlier
/// write replies flush); writes queue and reply later, preserving order.
fn serve_frame(
    line: &str,
    handle: &EngineHandle,
    pending: &mut Vec<Receiver<Response>>,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let trace = obs::trace::root("net.request");
    let request = match Request::decode(line) {
        Ok(request) => request,
        Err(e) => {
            count_request("invalid");
            obs::trace::note("kind", "invalid");
            drop(trace);
            flush_pending(pending, stream)?;
            return write_frame(
                stream,
                &Response::Error {
                    message: e.to_string(),
                },
            );
        }
    };
    let kind = request.kind_str();
    count_request(kind);
    obs::trace::note("kind", kind);
    let _span = obs::span(&format!("net_request_ns{{kind=\"{kind}\"}}"));
    if request.is_read_only() {
        // In-order semantics: answers to earlier queued writes first.
        flush_pending(pending, stream)?;
        let response = handle.request(request);
        drop(trace);
        return write_frame(stream, &response);
    }
    match handle.submit_write(request) {
        Ok(reply) => {
            pending.push(reply);
            Ok(())
        }
        Err(refusal) => {
            // Backpressure / shutdown: this frame's answer is the
            // refusal, still in frame order.
            net_obs().backpressure_total.inc();
            drop(trace);
            flush_pending(pending, stream)?;
            write_frame(stream, &refusal)
        }
    }
}

fn flush_pending(
    pending: &mut Vec<Receiver<Response>>,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    for reply in pending.drain(..) {
        write_frame(stream, &recv_reply(&reply))?;
    }
    Ok(())
}
