//! Writer-side deferred reclamation for [`Published`](crate::read::Published) values.
//!
//! The single writer owns one [`Reclaimer`]: every pointer returned by
//! `Published::publish` goes in tagged with the epoch at which it stopped
//! being current, and is freed once no reader is pinned at or below that
//! tag. Keeping the retire list on the writer's stack (not in the shared
//! struct) is what lets the read path stay free of any synchronization
//! primitive beyond atomics.

use std::sync::Arc;

use crate::read::Published;

/// Retired `(tag, pointer)` pairs awaiting a safe free point.
pub struct Reclaimer<T> {
    retired: Vec<(u64, *const T)>,
}

impl<T> Reclaimer<T> {
    /// An empty retire list.
    pub fn new() -> Reclaimer<T> {
        Reclaimer {
            retired: Vec::new(),
        }
    }

    /// Take custody of a replaced pointer (from `Published::publish`).
    pub fn retire(&mut self, tag: u64, ptr: *const T) {
        self.retired.push((tag, ptr));
    }

    /// Free every retired pointer no pinned reader can still observe.
    pub fn collect(&mut self, published: &Published<T>) {
        let min = published.min_pinned();
        self.retired.retain(|&(tag, ptr)| {
            if tag < min {
                // SAFETY: `ptr` came from `Arc::into_raw` via `publish`,
                // is retired exactly once, and no reader holds a pin that
                // could still resolve to it (module docs in `read.rs`).
                unsafe { drop(Arc::from_raw(ptr)) };
                false
            } else {
                true
            }
        });
    }

    /// Shutdown path: spin until every retired pointer is freed. Pins are
    /// a handful of atomic ops long, so this terminates promptly; called
    /// by the writer after the job queue is drained.
    pub fn drain(&mut self, published: &Published<T>) {
        while !self.retired.is_empty() {
            self.collect(published);
            if !self.retired.is_empty() {
                std::thread::yield_now();
            }
        }
    }

    /// Retired pointers still awaiting readers (test introspection).
    pub fn pending(&self) -> usize {
        self.retired.len()
    }
}

impl<T> Default for Reclaimer<T> {
    fn default() -> Reclaimer<T> {
        Reclaimer::new()
    }
}

// The retire list is raw pointers to `Arc` payloads; moving the reclaimer
// between threads is sound whenever the payload itself is `Send + Sync`
// (same bound `Published` requires).
unsafe impl<T: Send + Sync> Send for Reclaimer<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Payload counting live instances, to prove nothing leaks or
    /// double-frees under concurrent load/publish churn.
    struct Tracked(&'static AtomicUsize);

    impl Tracked {
        fn new(live: &'static AtomicUsize) -> Tracked {
            live.fetch_add(1, Ordering::SeqCst);
            Tracked(live)
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn publish_load_churn_neither_leaks_nor_double_frees() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        const READERS: usize = 4;
        const PUBLISHES: usize = 2_000;

        let published = Arc::new(Published::new(Arc::new(Tracked::new(&LIVE)), READERS));
        let stop = Arc::new(AtomicUsize::new(0));
        let loads = Arc::new(AtomicUsize::new(0));

        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let p = Arc::clone(&published);
                let stop = Arc::clone(&stop);
                let loads = Arc::clone(&loads);
                let slot = p.register().expect("slot for each reader");
                std::thread::spawn(move || {
                    while stop.load(Ordering::SeqCst) == 0 {
                        let v = p.load(slot);
                        assert!(LIVE.load(Ordering::SeqCst) >= 1);
                        drop(v);
                        loads.fetch_add(1, Ordering::SeqCst);
                    }
                    p.release(slot);
                })
            })
            .collect();

        let mut reclaimer = Reclaimer::new();
        let mut publishes = 0usize;
        // Churn until the fixed budget is spent AND readers overlapped
        // real publishes (on a single core the scheduler may not run
        // them until we yield).
        while publishes < PUBLISHES || loads.load(Ordering::SeqCst) < READERS * 8 {
            let (_, tag, old) = published.publish(Arc::new(Tracked::new(&LIVE)));
            reclaimer.retire(tag, old);
            reclaimer.collect(&published);
            publishes += 1;
            if publishes >= PUBLISHES {
                std::thread::yield_now();
            }
        }
        stop.store(1, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert!(loads.load(Ordering::SeqCst) > 0, "readers made progress");
        reclaimer.drain(&published);
        assert_eq!(reclaimer.pending(), 0);
        assert_eq!(published.epoch(), publishes as u64);
        // Everything retired was freed exactly once; only the current
        // publication remains live.
        assert_eq!(LIVE.load(Ordering::SeqCst), 1);
        drop(published);
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn register_exhaustion_and_release_reuse() {
        let p: Published<u32> = Published::new(Arc::new(7), 2);
        let a = p.register().unwrap();
        let b = p.register().unwrap();
        assert_ne!(a, b);
        assert!(p.register().is_none(), "capacity is enforced");
        p.release(a);
        assert_eq!(p.register(), Some(a), "released slots are reusable");
        assert_eq!(*p.load(b), 7);
        p.release(a);
        p.release(b);
        assert!(p.no_readers());
    }
}
