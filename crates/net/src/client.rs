//! A small blocking client for the newline-framed wire protocol — what
//! the tests, the benchmark harness, and `quality_service --connect`
//! speak to a [`NetServer`](crate::NetServer).

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use api::wire::{Request, Response};

/// One connection to the quality service. Requests and responses pair
/// one-to-one in order; [`Client::send`] / [`Client::recv`] expose the
/// halves separately so callers can pipeline.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect (blocking) to a running service.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Bound how long [`Client::recv`] waits for a response.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// One round trip: send the request, wait for its response.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Ship one request without waiting — pair each with a later
    /// [`Client::recv`]; responses come back in send order.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        self.send_raw(&request.encode())
    }

    /// Ship one raw frame verbatim (the frame-edge tests use this to
    /// send malformed and oversized lines).
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Write bytes with no framing at all — a *partial* frame, for
    /// exercising the server's mid-frame timeout and EOF handling.
    pub fn write_fragment(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Close the write half (EOF to the server); responses can still be
    /// read.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Read the next response frame.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::decode(line.trim_end_matches(['\n', '\r'])).map_err(|e| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("undecodable response frame: {e}"),
            )
        })
    }
}
