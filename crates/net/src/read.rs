//! The lock-free read path: epoch-published `Arc` state + pinned readers.
//!
//! [`Published<T>`] holds one current value behind an atomic pointer. A
//! single writer (enforced by ownership in `engine.rs`, not here)
//! replaces it with [`Published::publish`]; any number of registered
//! readers fetch it with [`Published::load`]. The read path is *genuinely
//! lock-free*: a load is a bounded sequence of atomic operations — no
//! blocking primitive, no spin-wait on the writer, no syscall. This file
//! is the entire read path and is pinned by a code-structure test to
//! contain no synchronization primitive beyond atomics.
//!
//! # Reclamation protocol
//!
//! The writer cannot drop a replaced value immediately — a reader may sit
//! between loading the pointer and bumping the strong count. Instead of
//! pulling in a hazard-pointer library, readers *pin* the epoch they are
//! about to read in a pre-registered slot:
//!
//! 1. reader: `e = epoch`; `slot = e` (announce); re-check `epoch == e`
//!    else re-announce with the newer value;
//! 2. reader: load pointer, `Arc::increment_strong_count`, `slot = IDLE`;
//! 3. writer: swap pointer, bump epoch to `e+1`, retire the old pointer
//!    tagged `e`, and free a retired pointer only once every slot is
//!    `> tag` (or unpinned).
//!
//! All operations are `SeqCst`, so one total order covers them. Suppose a
//! reader obtains a pointer the writer retired with tag `t`: the load
//! preceded the writer's swap, so the reader's announcement (step 1,
//! before its load) precedes the writer's post-retire slot scan, and the
//! announced value is ≤ `t` — the re-check guarantees the announced epoch
//! was current *after* the announcement, and the swap precedes the bump
//! to `t+1`. The scan therefore observes a pin ≤ `t` and refuses to free
//! until the reader has its refcount and unpins. Conversely a reader
//! announcing `> t` saw the epoch bump, which follows the swap, so its
//! load returns the newer pointer — never the retired one.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use api::wire::Response;
use api::Request;

use crate::engine::EpochState;

/// Slot value: unregistered — free for a new reader to claim.
const SLOT_FREE: u64 = u64::MAX;
/// Slot value: registered reader, not currently inside a load.
const SLOT_IDLE: u64 = u64::MAX - 1;

/// One atomically published `Arc<T>` with epoch-pinned readers.
pub struct Published<T> {
    /// `Arc::into_raw` of the current value. Never null.
    current: AtomicPtr<T>,
    /// Publication counter; bumped once per `publish`.
    epoch: AtomicU64,
    /// One announcement slot per registered reader.
    slots: Box<[AtomicU64]>,
}

// `Published` hands `Arc<T>` across threads and frees retired values on
// the writer thread, so the usual `Send + Sync` payload bounds apply.
unsafe impl<T: Send + Sync> Send for Published<T> {}
unsafe impl<T: Send + Sync> Sync for Published<T> {}

impl<T> Published<T> {
    /// Publish `initial` as epoch 0 with capacity for `readers` slots.
    pub fn new(initial: Arc<T>, readers: usize) -> Published<T> {
        let slots: Vec<AtomicU64> = (0..readers).map(|_| AtomicU64::new(SLOT_FREE)).collect();
        Published {
            current: AtomicPtr::new(Arc::into_raw(initial).cast_mut()),
            epoch: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Claim a reader slot; `None` when all are taken.
    pub fn register(&self) -> Option<usize> {
        for (i, s) in self.slots.iter().enumerate() {
            if s.compare_exchange(SLOT_FREE, SLOT_IDLE, SeqCst, SeqCst)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }

    /// Return a slot claimed by [`Published::register`].
    pub fn release(&self, slot: usize) {
        self.slots[slot].store(SLOT_FREE, SeqCst);
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Fetch the current value — the lock-free hot path. `slot` must be
    /// a slot this thread registered; concurrent loads on one slot are
    /// not allowed (each reader owns its slot).
    pub fn load(&self, slot: usize) -> Arc<T> {
        let guard = &self.slots[slot];
        let mut e = self.epoch.load(SeqCst);
        loop {
            guard.store(e, SeqCst);
            let now = self.epoch.load(SeqCst);
            if now == e {
                break;
            }
            // A publish slipped between read and announcement; re-announce
            // with the newer epoch. Bounded in practice by publish rate.
            e = now;
        }
        // Pinned at `e`: the writer will not free the pointer this load
        // observes until the pin is lifted (see module docs).
        let p = self.current.load(SeqCst);
        // SAFETY: `p` came from `Arc::into_raw` and cannot have been
        // freed — any retire tag for it is ≥ the pinned epoch.
        unsafe { Arc::increment_strong_count(p) };
        guard.store(SLOT_IDLE, SeqCst);
        // SAFETY: the strong count above is ours to consume.
        unsafe { Arc::from_raw(p) }
    }

    /// Writer side: swap in `next`, bump the epoch, and return the
    /// replaced raw pointer tagged with the epoch at which it stopped
    /// being current. The caller (the single writer) must hand the pair
    /// to its [`Reclaimer`](crate::publish::Reclaimer) — dropping the
    /// pointer immediately would race in-flight loads. Returns the new
    /// epoch as well.
    pub fn publish(&self, next: Arc<T>) -> (u64, u64, *const T) {
        let old = self.current.swap(Arc::into_raw(next).cast_mut(), SeqCst);
        let tag = self.epoch.fetch_add(1, SeqCst);
        (tag + 1, tag, old.cast_const())
    }

    /// The smallest epoch any reader is currently pinned at, or
    /// `u64::MAX` when no reader is mid-load. A retired pointer tagged
    /// `t` is safe to free once `min_pinned() > t`.
    pub fn min_pinned(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.load(SeqCst))
            .filter(|&v| v != SLOT_FREE && v != SLOT_IDLE)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// True when every slot is unclaimed — used by the writer at
    /// shutdown to know all readers are gone.
    pub fn no_readers(&self) -> bool {
        self.slots.iter().all(|s| s.load(SeqCst) == SLOT_FREE)
    }
}

impl<T> Drop for Published<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; the pointer is a live `Arc::into_raw`.
        unsafe { drop(Arc::from_raw(self.current.load(SeqCst).cast_const())) };
    }
}

/// Serve a read-only request from a published [`EpochState`] — pure
/// clones of responses the writer prepared at publish time, no backend
/// call, no synchronization. Returns `None` for the two introspection
/// reads (`Metrics` / `Trace`) that are answered from the live `obs`
/// registry by the engine instead, and for mutating requests (the caller
/// routes those to the writer).
pub fn serve_read(state: &EpochState, request: &Request) -> Option<Response> {
    match request {
        Request::Detect => Some(state.detect.clone()),
        Request::Audit => Some(state.audit.clone()),
        Request::LastReport => Some(match &state.last_report {
            Some(summary) => Response::Report(summary.clone()),
            None => Response::NoReport,
        }),
        Request::Len => Some(Response::Len { rows: state.len }),
        Request::Capabilities => Some(Response::Caps(state.caps.clone())),
        _ => None,
    }
}
