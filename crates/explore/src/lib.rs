//! # explore — the Semandaq Data Explorer
//!
//! The interactive surface of the demo, reproduced as deterministic state
//! machines over detection/repair results:
//!
//! * [`navigate::NavigationSession`] — the four-table drill-down of Fig. 2
//!   (embedded FD → pattern tuple → LHS match → RHS values → tuples), every
//!   level annotated with violation counts;
//! * [`inspect::inspect_tuple`] — the reverse view: tuple → relevant CFDs,
//!   violations and conflicting witnesses;
//! * [`review::ReviewSession`] — the cleansing review of Fig. 5: diff
//!   against the original, ranked alternatives per modified cell,
//!   accept/override, and incremental re-detection after overrides;
//! * [`render`] — the shared ASCII table renderer.

#![warn(missing_docs)]

pub mod inspect;
pub mod navigate;
pub mod render;
pub mod review;

pub use inspect::{inspect_tuple, render_inspection, CfdRelevance};
pub use navigate::{FdEntry, LhsEntry, NavigationSession, PatternEntry, RhsEntry};
pub use render::render_table;
pub use review::{diff_tables, ReviewEntry, ReviewSession, ReviewState};
