//! The four-step drill-down of Fig. 2: embedded FD → pattern tuple → LHS
//! match → RHS values → tuples. Every level annotates entries with the
//! number of violating tuples, "to guide the navigation process".

use std::collections::HashMap;

use cfd::dependency::group_into_tableaux;
use cfd::{BoundCfd, Cfd, CfdResult, Tableau};
use detect::violation::ViolationReport;
use minidb::{RowId, Table, Value};

use crate::render::render_table;

/// One level-1 entry: an embedded FD with its violation total.
#[derive(Debug, Clone, PartialEq)]
pub struct FdEntry {
    /// Index into the session's tableaux.
    pub idx: usize,
    /// Display form, e.g. `[CNT, ZIP] -> [CITY]`.
    pub fd: String,
    /// Total violations across the tableau's pattern rows.
    pub violations: usize,
}

/// One level-2 entry: a pattern tuple of the selected FD.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternEntry {
    /// Index of the CFD in the session's constraint set.
    pub cfd_idx: usize,
    /// Display form, e.g. `['UK', _ || _]`.
    pub pattern: String,
    /// Violations attributed to this pattern row.
    pub violations: usize,
}

/// One level-3 entry: a distinct LHS value combination.
#[derive(Debug, Clone, PartialEq)]
pub struct LhsEntry {
    /// The LHS key values.
    pub key: Vec<Value>,
    /// Tuples carrying this key (and matching the pattern).
    pub tuples: usize,
    /// Number of tuples in this key-group involved in a violation of the
    /// selected CFD.
    pub violating: usize,
}

/// One level-4 entry: a distinct RHS value under the selected LHS.
#[derive(Debug, Clone, PartialEq)]
pub struct RhsEntry {
    /// The RHS value.
    pub value: Value,
    /// Tuples holding it.
    pub tuples: usize,
}

/// A read-only navigation session over one detection result.
pub struct NavigationSession<'a> {
    table: &'a Table,
    report: &'a ViolationReport,
    tableaux: Vec<Tableau>,
    bound: Vec<BoundCfd>,
}

impl<'a> NavigationSession<'a> {
    /// Open a session.
    pub fn new(
        table: &'a Table,
        cfds: &'a [Cfd],
        report: &'a ViolationReport,
    ) -> CfdResult<NavigationSession<'a>> {
        let bound = cfds
            .iter()
            .map(|c| c.bind(table.schema()))
            .collect::<CfdResult<Vec<_>>>()?;
        Ok(NavigationSession {
            table,
            report,
            tableaux: group_into_tableaux(cfds),
            bound,
        })
    }

    /// Level 1 (Fig. 2, first table): the embedded FDs.
    pub fn fds(&self) -> Vec<FdEntry> {
        self.tableaux
            .iter()
            .enumerate()
            .map(|(idx, t)| {
                let violations = t
                    .rows
                    .iter()
                    .map(|(_, _, cfd_idx)| self.report.per_cfd.get(cfd_idx).copied().unwrap_or(0))
                    .sum();
                FdEntry {
                    idx,
                    fd: format!(
                        "[{}] -> [{}]",
                        t.fd.lhs.join(", ").to_uppercase(),
                        t.fd.rhs.to_uppercase()
                    ),
                    violations,
                }
            })
            .collect()
    }

    /// Level 2 (second table): the pattern tuples of FD `fd_idx`.
    pub fn patterns(&self, fd_idx: usize) -> Vec<PatternEntry> {
        let Some(t) = self.tableaux.get(fd_idx) else {
            return Vec::new();
        };
        t.rows
            .iter()
            .map(|(lhs, rhs, cfd_idx)| {
                let lhs_s: Vec<String> = lhs.iter().map(|p| p.to_string()).collect();
                PatternEntry {
                    cfd_idx: *cfd_idx,
                    pattern: format!("({} || {})", lhs_s.join(", "), rhs),
                    violations: self.report.per_cfd.get(cfd_idx).copied().unwrap_or(0),
                }
            })
            .collect()
    }

    /// Level 3 (third table): distinct LHS combinations matching the
    /// pattern of CFD `cfd_idx`, with violation counts.
    pub fn lhs_matches(&self, cfd_idx: usize) -> Vec<LhsEntry> {
        let Some(b) = self.bound.get(cfd_idx) else {
            return Vec::new();
        };
        let mut groups: HashMap<Vec<Value>, (usize, usize)> = HashMap::new();
        for (id, row) in self.table.iter() {
            if !b.lhs_matches(row) {
                continue;
            }
            let entry = groups.entry(b.lhs_key(row)).or_default();
            entry.0 += 1;
            if self.row_violates_cfd(id, cfd_idx) {
                entry.1 += 1;
            }
        }
        let mut out: Vec<LhsEntry> = groups
            .into_iter()
            .map(|(key, (tuples, violating))| LhsEntry {
                key,
                tuples,
                violating,
            })
            .collect();
        out.sort_by(|a, b| {
            b.violating
                .cmp(&a.violating)
                .then_with(|| key_str(&a.key).cmp(&key_str(&b.key)))
        });
        out
    }

    /// Level 4 (fourth table): distinct RHS values of tuples matching CFD
    /// `cfd_idx` with LHS key `key`.
    pub fn rhs_values(&self, cfd_idx: usize, key: &[Value]) -> Vec<RhsEntry> {
        let Some(b) = self.bound.get(cfd_idx) else {
            return Vec::new();
        };
        let mut counts: HashMap<Value, usize> = HashMap::new();
        for (_, row) in self.table.iter() {
            if !b.lhs_matches(row) || b.lhs_key(row) != key {
                continue;
            }
            *counts.entry(row[b.rhs_col].clone()).or_default() += 1;
        }
        let mut out: Vec<RhsEntry> = counts
            .into_iter()
            .map(|(value, tuples)| RhsEntry { value, tuples })
            .collect();
        out.sort_by(|a, b| {
            b.tuples
                .cmp(&a.tuples)
                .then_with(|| a.value.render().cmp(&b.value.render()))
        });
        out
    }

    /// Level 5 (the click the paper says is "not shown"): the tuples behind
    /// one RHS value.
    pub fn tuples(&self, cfd_idx: usize, key: &[Value], rhs: &Value) -> Vec<(RowId, Vec<Value>)> {
        let Some(b) = self.bound.get(cfd_idx) else {
            return Vec::new();
        };
        self.table
            .iter()
            .filter(|(_, row)| {
                b.lhs_matches(row) && b.lhs_key(row) == key && row[b.rhs_col].strong_eq(rhs)
            })
            .map(|(id, row)| (id, row.to_vec()))
            .collect()
    }

    fn row_violates_cfd(&self, id: RowId, cfd_idx: usize) -> bool {
        self.report
            .violations
            .iter()
            .any(|v| v.cfd_idx == cfd_idx && v.rows().contains(&id))
    }

    // ------------------------------------------------------- rendering

    /// Render level 1 as an ASCII table.
    pub fn render_fds(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .fds()
            .iter()
            .map(|e| vec![e.idx.to_string(), e.fd.clone(), e.violations.to_string()])
            .collect();
        render_table(
            &["#".into(), "embedded FD".into(), "violations".into()],
            &rows,
        )
    }

    /// Render level 2.
    pub fn render_patterns(&self, fd_idx: usize) -> String {
        let rows: Vec<Vec<String>> = self
            .patterns(fd_idx)
            .iter()
            .map(|e| {
                vec![
                    e.cfd_idx.to_string(),
                    e.pattern.clone(),
                    e.violations.to_string(),
                ]
            })
            .collect();
        render_table(
            &["cfd".into(), "pattern tuple".into(), "violations".into()],
            &rows,
        )
    }

    /// Render level 3 (top `limit` rows).
    pub fn render_lhs(&self, cfd_idx: usize, limit: usize) -> String {
        let Some(b) = self.bound.get(cfd_idx) else {
            return String::new();
        };
        let mut headers: Vec<String> = b.cfd.lhs.to_vec();
        headers.push("tuples".into());
        headers.push("violating".into());
        let rows: Vec<Vec<String>> = self
            .lhs_matches(cfd_idx)
            .iter()
            .take(limit)
            .map(|e| {
                let mut r: Vec<String> = e.key.iter().map(Value::render).collect();
                r.push(e.tuples.to_string());
                r.push(e.violating.to_string());
                r
            })
            .collect();
        render_table(&headers, &rows)
    }

    /// Render level 4.
    pub fn render_rhs(&self, cfd_idx: usize, key: &[Value]) -> String {
        let Some(b) = self.bound.get(cfd_idx) else {
            return String::new();
        };
        let rows: Vec<Vec<String>> = self
            .rhs_values(cfd_idx, key)
            .iter()
            .map(|e| vec![e.value.render(), e.tuples.to_string()])
            .collect();
        render_table(&[b.cfd.rhs.clone(), "tuples".into()], &rows)
    }
}

fn key_str(key: &[Value]) -> String {
    key.iter()
        .map(Value::render)
        .collect::<Vec<_>>()
        .join("\u{1}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd::parse::parse_cfds;
    use detect::detect_native;
    use minidb::Schema;

    fn setup() -> (Table, Vec<Cfd>) {
        let schema = Schema::of_strings(&["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"]);
        let mut t = Table::new("customer", schema);
        let rows = [
            ["a", "UK", "EDI", "EH2 4SD", "High St", "44", "131"],
            ["b", "UK", "EDI", "EH2 4SD", "Mayfield Rd", "44", "131"],
            ["c", "UK", "EDI", "EH2 4SD", "Crichton St", "44", "131"],
            ["d", "UK", "LDN", "NW1 6XE", "Baker St", "44", "207"],
            ["e", "US", "NYC", "01202", "Oak Ave", "01", "212"],
        ];
        for r in rows {
            t.insert(r.iter().map(|v| Value::str(*v)).collect())
                .unwrap();
        }
        let cfds = parse_cfds(
            "customer: [CNT, ZIP] -> [STR]\n\
             customer: [CNT='UK', ZIP=_] -> [STR=_]",
        )
        .unwrap();
        (t, cfds)
    }

    #[test]
    fn fig2_drilldown_reproduces_the_papers_walk() {
        let (t, cfds) = setup();
        let report = detect_native(&t, &cfds).unwrap();
        let nav = NavigationSession::new(&t, &cfds, &report).unwrap();

        // Table 1: one embedded FD [CNT, ZIP] -> [STR] with violations.
        let fds = nav.fds();
        assert_eq!(fds.len(), 1);
        assert!(fds[0].violations > 0);

        // Table 2: two pattern tuples; the UK one carries violations.
        let pats = nav.patterns(0);
        assert_eq!(pats.len(), 2);
        let uk = pats.iter().find(|p| p.pattern.contains("'UK'")).unwrap();
        assert!(uk.violations > 0);

        // Table 3: LHS matches of the UK pattern; (UK, EH2 4SD) leads with
        // 3 violating tuples.
        let lhs = nav.lhs_matches(uk.cfd_idx);
        assert_eq!(lhs[0].key, vec![Value::str("UK"), Value::str("EH2 4SD")]);
        assert_eq!(lhs[0].tuples, 3);
        assert_eq!(lhs[0].violating, 3);

        // Table 4: exactly three distinct RHS street values (as in Fig. 2).
        let rhs = nav.rhs_values(uk.cfd_idx, &lhs[0].key);
        assert_eq!(rhs.len(), 3);

        // Final click: tuples behind one RHS value.
        let tuples = nav.tuples(uk.cfd_idx, &lhs[0].key, &rhs[0].value);
        assert_eq!(tuples.len(), 1);
    }

    #[test]
    fn clean_groups_report_zero_violations() {
        let (t, cfds) = setup();
        let report = detect_native(&t, &cfds).unwrap();
        let nav = NavigationSession::new(&t, &cfds, &report).unwrap();
        let pats = nav.patterns(0);
        let all = pats.iter().find(|p| !p.pattern.contains("'UK'")).unwrap();
        let lhs = nav.lhs_matches(all.cfd_idx);
        // The US row's group and the NW1 group are clean.
        let us = lhs
            .iter()
            .find(|e| e.key[0].strong_eq(&Value::str("US")))
            .unwrap();
        assert_eq!(us.violating, 0);
    }

    #[test]
    fn rendering_produces_tables() {
        let (t, cfds) = setup();
        let report = detect_native(&t, &cfds).unwrap();
        let nav = NavigationSession::new(&t, &cfds, &report).unwrap();
        assert!(nav.render_fds().contains("embedded FD"));
        assert!(nav.render_patterns(0).contains("pattern tuple"));
        let pats = nav.patterns(0);
        let s = nav.render_lhs(pats[0].cfd_idx, 10);
        assert!(s.contains("violating"), "{s}");
    }
}
