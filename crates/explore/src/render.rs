//! Plain-text table rendering shared by all explorer views.

/// Render an ASCII table with a header row and box-drawing-free framing.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    let render_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            s.push_str(&format!(" {cell:<w$} |"));
        }
        s.push('\n');
        s
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push_str(&render_row(headers));
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row));
    }
    out.push_str(&sep);
    out
}

/// Helper: stringify a slice of values for rendering.
pub fn render_values(values: &[minidb::Value]) -> Vec<String> {
    values.iter().map(|v| v.render()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let s = render_table(
            &["name".into(), "city".into()],
            &[
                vec!["mike".into(), "EDI".into()],
                vec!["a-longer-name".into(), "L".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        // all lines same width
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{s}");
        assert!(s.contains("| name          | city |"), "{s}");
    }

    #[test]
    fn empty_rows_render_header_only() {
        let s = render_table(&["a".into()], &[]);
        assert_eq!(s.lines().count(), 3 + 1); // sep, header, sep, sep
    }

    #[test]
    fn short_rows_pad_missing_cells() {
        let s = render_table(&["a".into(), "b".into()], &[vec!["x".into()]]);
        assert!(s.contains("| x | "), "{s}");
    }
}
