//! The cleansing review of Fig. 5: compare a candidate repair with the
//! original data, list ranked alternatives for each modified value, accept
//! or override changes, and re-detect incrementally after an override to
//! surface the tuples a manual edit newly conflicts with.

use cfd::{Cfd, CfdResult};
use detect::IncrementalDetector;
use minidb::{Database, DbError, RowId, Table, Value};
use repair::{alternatives_for, Alternative, CellChange, WeightModel};

use crate::render::render_table;

fn db_err(e: DbError) -> cfd::CfdError {
    cfd::CfdError::Malformed(format!("review failed: {e}"))
}

/// One reviewed modification.
#[derive(Debug, Clone, PartialEq)]
pub struct ReviewEntry {
    /// Cell row.
    pub row: RowId,
    /// Cell column.
    pub col: usize,
    /// Attribute name.
    pub attribute: String,
    /// Original (pre-repair) value.
    pub original: Value,
    /// Value the repair proposed.
    pub proposed: Value,
    /// Review state.
    pub state: ReviewState,
}

/// State of one reviewed change.
#[derive(Debug, Clone, PartialEq)]
pub enum ReviewState {
    /// Untouched: the repair's proposal stands.
    Proposed,
    /// Explicitly accepted by the reviewer.
    Accepted,
    /// Overridden with a user-chosen value.
    Overridden(Value),
}

/// Interactive review session over a repaired database.
pub struct ReviewSession<'a> {
    db: &'a mut Database,
    relation: String,
    cfds: Vec<Cfd>,
    entries: Vec<ReviewEntry>,
    detector: IncrementalDetector,
    weights: WeightModel,
}

impl<'a> ReviewSession<'a> {
    /// Open a review over `db.relation` given the repair's change list.
    /// `db` must already contain the repaired data.
    pub fn new(
        db: &'a mut Database,
        relation: &str,
        cfds: &[Cfd],
        changes: &[CellChange],
    ) -> CfdResult<ReviewSession<'a>> {
        let table = db.table(relation).map_err(db_err)?;
        let schema = table.schema().clone();
        // Collapse multiple changes per cell: first old value, last new.
        let mut entries: Vec<ReviewEntry> = Vec::new();
        for c in changes {
            match entries
                .iter_mut()
                .find(|e| e.row == c.row && e.col == c.col)
            {
                Some(e) => e.proposed = c.new.clone(),
                None => entries.push(ReviewEntry {
                    row: c.row,
                    col: c.col,
                    attribute: schema.column(c.col).name.clone(),
                    original: c.old.clone(),
                    proposed: c.new.clone(),
                    state: ReviewState::Proposed,
                }),
            }
        }
        let detector = IncrementalDetector::build(table, cfds)?;
        Ok(ReviewSession {
            db,
            relation: relation.to_string(),
            cfds: cfds.to_vec(),
            entries,
            detector,
            weights: WeightModel::uniform(),
        })
    }

    /// The reviewed modifications.
    pub fn entries(&self) -> &[ReviewEntry] {
        &self.entries
    }

    /// Current total violations (kept incrementally up to date).
    pub fn current_violations(&self) -> u64 {
        self.detector.total_violations()
    }

    /// Ranked alternatives for entry `i` (Fig. 5's pop-up).
    pub fn alternatives(&self, i: usize, k: usize) -> CfdResult<Vec<Alternative>> {
        let e = self
            .entries
            .get(i)
            .ok_or_else(|| cfd::CfdError::Malformed(format!("no review entry {i}")))?;
        alternatives_for(
            self.db,
            &self.relation,
            &self.cfds,
            e.row,
            e.col,
            &e.original,
            &self.weights,
            k,
        )
    }

    /// Accept the proposed value of entry `i` (bookkeeping only — the value
    /// is already in place).
    pub fn accept(&mut self, i: usize) -> CfdResult<()> {
        let e = self
            .entries
            .get_mut(i)
            .ok_or_else(|| cfd::CfdError::Malformed(format!("no review entry {i}")))?;
        e.state = ReviewState::Accepted;
        Ok(())
    }

    /// Override entry `i` with `value`; applies the edit, updates the
    /// incremental detector, and returns the rows that now conflict with
    /// the edited tuple (the background re-detection of Fig. 5).
    pub fn override_with(&mut self, i: usize, value: Value) -> CfdResult<Vec<RowId>> {
        let (row, col) = {
            let e = self
                .entries
                .get(i)
                .ok_or_else(|| cfd::CfdError::Malformed(format!("no review entry {i}")))?;
            (e.row, e.col)
        };
        let old_row: Vec<Value> = self
            .db
            .table(&self.relation)
            .map_err(db_err)?
            .get(row)
            .map_err(db_err)?
            .to_vec();
        self.db
            .update_cell(&self.relation, row, col, value.clone())
            .map_err(db_err)?;
        let new_row: Vec<Value> = self
            .db
            .table(&self.relation)
            .map_err(db_err)?
            .get(row)
            .map_err(db_err)?
            .to_vec();
        self.detector.update(row, &old_row, &new_row);
        self.entries[i].state = ReviewState::Overridden(value);

        // Conflicting tuples with the edited row, from the fresh report.
        let report = self.detector.report();
        let mut conflicts: Vec<RowId> = report
            .violations
            .iter()
            .filter(|v| v.rows().contains(&row))
            .flat_map(|v| v.rows())
            .filter(|r| *r != row)
            .collect();
        conflicts.sort();
        conflicts.dedup();
        Ok(conflicts)
    }

    /// Render the review as a diff table: original vs proposed values with
    /// review state (the textual Fig. 5).
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .entries
            .iter()
            .map(|e| {
                let state = match &e.state {
                    ReviewState::Proposed => "proposed".to_string(),
                    ReviewState::Accepted => "accepted".to_string(),
                    ReviewState::Overridden(v) => format!("overridden -> {}", v.render()),
                };
                vec![
                    e.row.0.to_string(),
                    e.attribute.clone(),
                    e.original.render(),
                    format!("*{}*", e.proposed.render()),
                    state,
                ]
            })
            .collect();
        render_table(
            &[
                "row".into(),
                "attr".into(),
                "original".into(),
                "repaired".into(),
                "state".into(),
            ],
            &rows,
        )
    }
}

/// Produce a side-by-side diff of two table versions (original vs
/// repaired), restricted to rows that differ; changed cells are marked
/// `old => new`.
pub fn diff_tables(original: &Table, repaired: &Table) -> String {
    let schema = original.schema();
    let mut headers: Vec<String> = vec!["row".into()];
    headers.extend(schema.names().iter().map(|s| s.to_string()));
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (id, orig_row) in original.iter() {
        let Ok(rep_row) = repaired.get(id) else {
            let mut r = vec![id.0.to_string()];
            r.extend(
                orig_row
                    .iter()
                    .map(|v| format!("{} => (deleted)", v.render())),
            );
            rows.push(r);
            continue;
        };
        if orig_row == rep_row {
            continue;
        }
        let mut r = vec![id.0.to_string()];
        for (a, b) in orig_row.iter().zip(rep_row) {
            if a.strong_eq(b) {
                r.push(a.render());
            } else {
                r.push(format!("{} => {}", a.render(), b.render()));
            }
        }
        rows.push(r);
    }
    render_table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dirty_customers;
    use repair::{batch_repair, RepairConfig};

    #[test]
    fn review_lists_changes_and_alternatives() {
        let mut d = dirty_customers(150, 0.05, 61);
        let result =
            batch_repair(&mut d.db, "customer", &d.cfds, &RepairConfig::default()).unwrap();
        assert!(result.residual.is_empty());
        let n_changes = result.changes.len();
        let mut session =
            ReviewSession::new(&mut d.db, "customer", &d.cfds, &result.changes).unwrap();
        assert!(!session.entries().is_empty());
        assert!(session.entries().len() <= n_changes);
        assert_eq!(session.current_violations(), 0);
        let alts = session.alternatives(0, 3).unwrap();
        assert!(alts.len() <= 3);
        session.accept(0).unwrap();
        assert_eq!(session.entries()[0].state, ReviewState::Accepted);
    }

    #[test]
    fn override_triggers_incremental_redetection() {
        let mut d = dirty_customers(150, 0.05, 62);
        let result =
            batch_repair(&mut d.db, "customer", &d.cfds, &RepairConfig::default()).unwrap();
        let mut session =
            ReviewSession::new(&mut d.db, "customer", &d.cfds, &result.changes).unwrap();
        // Override the first change with an obviously wrong value: a bogus
        // country that breaks the CC → CNT rule or its group.
        let before = session.current_violations();
        let entry = session.entries()[0].clone();
        // Overriding CNT with junk re-violates [CC='44'] -> [CNT='UK'] etc.
        let conflicts = session.override_with(0, Value::str("Nowhere")).unwrap();
        let after = session.current_violations();
        assert!(
            after > before || !conflicts.is_empty() || entry.col == 0,
            "bad override must surface new conflicts (before={before}, after={after})"
        );
        assert!(matches!(
            session.entries()[0].state,
            ReviewState::Overridden(_)
        ));
    }

    #[test]
    fn diff_marks_changed_cells_only() {
        let d = dirty_customers(60, 0.05, 63);
        let original = d.db.table("customer").unwrap().clone();
        let mut db = d.db.clone();
        let result = batch_repair(&mut db, "customer", &d.cfds, &RepairConfig::default()).unwrap();
        let repaired = db.table("customer").unwrap();
        let s = diff_tables(&original, repaired);
        assert!(s.contains("=>"), "diff must mark changes:\n{s}");
        // Rows without changes are suppressed: row count in the diff is at
        // most the number of changed rows.
        let changed_rows: std::collections::HashSet<_> =
            result.changes.iter().map(|c| c.row).collect();
        let diff_rows = s.lines().filter(|l| l.starts_with("| ")).count() - 1; // minus header
        assert!(diff_rows <= changed_rows.len());
    }
}
