//! Reverse exploration (paper §3): "the user selects a tuple in the data
//! and is provided with all CFDs and pattern tuples relevant to that tuple"
//! — the reasons why a tuple counts as a violation, plus the conflicting
//! witnesses a user needs to fix it manually.

use cfd::{BoundCfd, Cfd, CfdResult};
use detect::violation::{ViolationKind, ViolationReport};
use minidb::{RowId, Table, Value};

use crate::render::render_table;

/// How one CFD relates to one tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct CfdRelevance {
    /// Index of the CFD.
    pub cfd_idx: usize,
    /// Display form.
    pub cfd: String,
    /// Whether the tuple matches the CFD's LHS pattern.
    pub applies: bool,
    /// Whether the tuple is involved in a violation of this CFD.
    pub violated: bool,
    /// Conflicting tuples (other members of a violating group whose RHS
    /// differs; the tuple itself for single-tuple violations).
    pub conflicts: Vec<RowId>,
}

/// Inspect a tuple: its relevant CFDs, violations and conflict witnesses.
pub fn inspect_tuple(
    table: &Table,
    cfds: &[Cfd],
    report: &ViolationReport,
    row: RowId,
) -> CfdResult<Vec<CfdRelevance>> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(table.schema()))
        .collect::<CfdResult<_>>()?;
    let row_vals: Vec<Value> = table
        .get(row)
        .map_err(|e| cfd::CfdError::Malformed(e.to_string()))?
        .to_vec();

    let mut out = Vec::with_capacity(cfds.len());
    for (i, b) in bound.iter().enumerate() {
        let applies = b.lhs_matches(&row_vals);
        let mut violated = false;
        let mut conflicts: Vec<RowId> = Vec::new();
        for v in report.violations.iter().filter(|v| v.cfd_idx == i) {
            match &v.kind {
                ViolationKind::SingleTuple { row: r } if *r == row => {
                    violated = true;
                    conflicts.push(row);
                }
                ViolationKind::MultiTuple { rows, .. } => {
                    if let Some((_, my_val)) = rows.iter().find(|(r, _)| *r == row) {
                        violated = true;
                        conflicts.extend(
                            rows.iter()
                                .filter(|(r, val)| *r != row && !val.strong_eq(my_val))
                                .map(|(r, _)| *r),
                        );
                    }
                }
                _ => {}
            }
        }
        conflicts.sort();
        conflicts.dedup();
        out.push(CfdRelevance {
            cfd_idx: i,
            cfd: cfds[i].to_string(),
            applies,
            violated,
            conflicts,
        });
    }
    Ok(out)
}

/// Render the inspection as an ASCII table.
pub fn render_inspection(relevances: &[CfdRelevance]) -> String {
    let rows: Vec<Vec<String>> = relevances
        .iter()
        .map(|r| {
            vec![
                r.cfd_idx.to_string(),
                r.cfd.clone(),
                if r.applies { "yes" } else { "no" }.into(),
                if r.violated { "YES" } else { "-" }.into(),
                if r.conflicts.is_empty() {
                    "-".to_string()
                } else {
                    r.conflicts
                        .iter()
                        .map(|c| c.0.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                },
            ]
        })
        .collect();
    render_table(
        &[
            "#".into(),
            "CFD".into(),
            "applies".into(),
            "violated".into(),
            "conflicting rows".into(),
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd::parse::parse_cfds;
    use detect::detect_native;
    use minidb::Schema;

    fn setup() -> (Table, Vec<Cfd>, ViolationReport) {
        let schema = Schema::of_strings(&["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"]);
        let mut t = Table::new("customer", schema);
        for r in [
            ["a", "UK", "EDI", "EH4", "High St", "44", "131"],
            ["b", "UK", "LDN", "EH4", "High St", "44", "131"],
            ["c", "US", "NYC", "012", "Oak Ave", "44", "212"],
        ] {
            t.insert(r.iter().map(|v| Value::str(*v)).collect())
                .unwrap();
        }
        let cfds = parse_cfds(
            "customer: [CNT, ZIP] -> [CITY]\n\
             customer: [CC='44'] -> [CNT='UK']",
        )
        .unwrap();
        let report = detect_native(&t, &cfds).unwrap();
        (t, cfds, report)
    }

    #[test]
    fn inspection_explains_why_a_tuple_is_dirty() {
        let (t, cfds, report) = setup();
        // Row 0: multi-tuple violation of φ1, conflicting with row 1.
        let rel = inspect_tuple(&t, &cfds, &report, RowId(0)).unwrap();
        assert!(rel[0].violated);
        assert_eq!(rel[0].conflicts, vec![RowId(1)]);
        assert!(!rel[1].violated);
        assert!(rel[1].applies, "CC='44' applies to row 0");

        // Row 2: single-tuple violation of φ2 (CC=44 but CNT=US).
        let rel = inspect_tuple(&t, &cfds, &report, RowId(2)).unwrap();
        assert!(rel[1].violated);
        assert!(!rel[0].violated);
    }

    #[test]
    fn applies_flag_separates_scope_from_violation() {
        let (t, cfds, report) = setup();
        let rel = inspect_tuple(&t, &cfds, &report, RowId(1)).unwrap();
        // φ2 applies to row 1 (CC=44) and is satisfied (CNT=UK).
        assert!(rel[1].applies);
        assert!(!rel[1].violated);
    }

    #[test]
    fn render_produces_a_table() {
        let (t, cfds, report) = setup();
        let rel = inspect_tuple(&t, &cfds, &report, RowId(0)).unwrap();
        let s = render_inspection(&rel);
        assert!(s.contains("conflicting rows"));
        assert!(s.contains("YES"));
    }

    #[test]
    fn missing_row_errors() {
        let (t, cfds, report) = setup();
        assert!(inspect_tuple(&t, &cfds, &report, RowId(99)).is_err());
    }
}
