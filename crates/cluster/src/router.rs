//! Shard routing: which shard owns a row.
//!
//! A [`ShardRouter`] decides placement **at insert time** from the row's
//! values; from then on the cluster remembers the placement (row ids are
//! global, the id → shard map is the cluster's), so routing never has to
//! be re-derivable from data. That makes round-robin — which balances
//! perfectly but is value-blind — a first-class citizen next to
//! hash-by-key.
//!
//! Placement affects *performance*, never *results*: detection is exact
//! under any router (the scatter/gather exchange reconciles split groups).
//! A [`HashRouter`] keyed on a CFD's LHS columns keeps each of that CFD's
//! groups on one shard, collapsing its exchange to local conflicts; a
//! mis-keyed or round-robin placement just pays more merge work.

use std::hash::{Hash, Hasher};

use detect::fxhash::FxHasher;
use minidb::Value;

/// Chooses the shard (`0..n_shards`) for a row about to be inserted.
pub trait ShardRouter: Send {
    /// Route one row. Stateful routers (round-robin) advance per call —
    /// the cluster calls this exactly once per successful insert.
    fn route(&mut self, row: &[Value], n_shards: usize) -> usize;

    /// Short label for benchmarks and debug output.
    fn name(&self) -> &'static str;
}

/// Routes by hashing a fixed set of key columns (all columns when empty).
///
/// Uses the deterministic [`FxHasher`] — placement is reproducible across
/// runs and processes, which the benchmarks and property tests rely on.
#[derive(Debug, Clone, Default)]
pub struct HashRouter {
    key_cols: Vec<usize>,
}

impl HashRouter {
    /// Router hashing the given schema positions (empty = whole row).
    pub fn new(key_cols: Vec<usize>) -> HashRouter {
        HashRouter { key_cols }
    }
}

impl ShardRouter for HashRouter {
    fn route(&mut self, row: &[Value], n_shards: usize) -> usize {
        let mut h = FxHasher::default();
        if self.key_cols.is_empty() {
            row.hash(&mut h);
        } else {
            for &c in &self.key_cols {
                row[c].hash(&mut h);
            }
        }
        (h.finish() % n_shards.max(1) as u64) as usize
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Routes rows to shards in rotation — perfectly balanced, value-blind
/// (the worst case for exchange volume: every group is split).
#[derive(Debug, Clone, Default)]
pub struct RoundRobinRouter {
    next: usize,
}

impl ShardRouter for RoundRobinRouter {
    fn route(&mut self, _row: &[Value], n_shards: usize) -> usize {
        let s = self.next % n_shards.max(1);
        self.next = self.next.wrapping_add(1);
        s
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_router_is_deterministic_and_key_scoped() {
        let mut r = HashRouter::new(vec![0]);
        let a = vec![Value::str("k"), Value::str("x")];
        let b = vec![Value::str("k"), Value::str("y")];
        let s = r.route(&a, 8);
        assert_eq!(s, r.route(&a, 8), "same row, same shard");
        assert_eq!(s, r.route(&b, 8), "column 1 is outside the key");
        let mut whole = HashRouter::default();
        assert_eq!(whole.route(&a, 8), whole.route(&a.clone(), 8));
    }

    #[test]
    fn round_robin_rotates() {
        let mut r = RoundRobinRouter::default();
        let row = vec![Value::Null];
        let got: Vec<usize> = (0..5).map(|_| r.route(&row, 3)).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn single_shard_swallows_everything() {
        let row = vec![Value::str("z")];
        assert_eq!(HashRouter::default().route(&row, 1), 0);
        assert_eq!(RoundRobinRouter::default().route(&row, 1), 0);
    }
}
