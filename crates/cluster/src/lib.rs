//! # cluster — the sharded quality cluster
//!
//! Scale-out for the Semandaq quality server: one relation partitioned
//! across N colstore-backed shards, with exact scatter/gather CFD
//! detection.
//!
//! * [`ShardRouter`] — pluggable placement: [`HashRouter`] (deterministic
//!   FxHash over chosen key columns) or [`RoundRobinRouter`] (perfect
//!   balance, value-blind). Placement is a performance knob, never a
//!   correctness one.
//! * [`ShardedQualityServer`] — routes `insert` / `delete` / `update_cell`
//!   to the owning shard, keeping each shard's epoch-versioned
//!   [`colstore::SnapshotCache`] patched in lock-step; `detect()` scatters
//!   per-CFD partial export across shards (`crossbeam` scoped threads,
//!   per-shard memoization against column epochs) and gathers with the
//!   partial-group merge of [`detect::exchange`].
//! * [`ShardedQualityServer::repair`] — cross-shard repair (see
//!   [`repair`](crate::repair)): each round detects through the exchange,
//!   builds **global** equivalence classes over the merged per-group
//!   partials with the shared plan/resolve core of `repair::rounds`, and
//!   routes the cell changes back as per-shard snapshot patch batches —
//!   output-identical to single-node `batch_repair` of the merged table.
//!
//! The merged report is `normalized()`-equal to single-node columnar
//! detection on every instance, router and shard count — constant CFDs are
//! embarrassingly parallel per row, and variable CFDs only conflict within
//! an LHS group, so per-group partial aggregation loses nothing.

#![warn(missing_docs)]

pub mod repair;
pub mod router;
pub mod server;

pub use router::{HashRouter, RoundRobinRouter, ShardRouter};
pub use server::{DetectStats, ShardedQualityServer};
