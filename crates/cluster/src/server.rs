//! The sharded quality server: scatter/gather CFD detection over
//! partitioned colstore shards.
//!
//! A [`ShardedQualityServer`] hash- or round-robin-partitions one relation
//! across N shards. Each shard owns a [`minidb::Table`] holding its rows
//! **under their global row ids** (via [`Table::insert_at`] — no id
//! translation anywhere) plus its own epoch-versioned
//! [`colstore::SnapshotCache`], so routed mutations patch each shard's
//! dictionary-encoded snapshot incrementally exactly like a single-node
//! server's.
//!
//! Detection is scatter/gather:
//!
//! 1. **Scatter** — every shard (fanned out over `crossbeam` scoped
//!    threads) exports one [`CfdPartial`] per CFD from its cached
//!    snapshot: constant CFDs resolve fully shard-local; variable CFDs
//!    export the per-group partial state of `detect::exchange`. Exports
//!    are memoized per shard per CFD against the cache's per-column
//!    epochs — a shard whose rows and relevant columns are untouched
//!    since the last detect ships the same `Arc` again.
//! 2. **Gather** — the coordinator merges the partials
//!    ([`merge_cfd_partials`]): singles concatenate, groups union by LHS
//!    key, and any merged group with ≥ 2 distinct RHS values becomes a
//!    violation — whether the disagreement sat inside one shard or only
//!    exists across shards.
//!
//! The merged [`ViolationReport`] is `normalized()`-equal to single-node
//! [`colstore::detect_columnar`] over the union of the rows, for every
//! router and shard count (`tests/sharded_cluster.rs` pins this by
//! property).

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use api::{BatchOutcome, Capabilities, Mutation, MutationBatch, QualityBackend, RepairSummary};
use audit::{quality_report, QualityReport};
use cfd::parse::parse_cfds;
use cfd::{BoundCfd, Cfd, CfdError, CfdResult};
use colstore::{cfd_partial_one, SnapshotCache, TableDelta};
use detect::exchange::{merge_cfd_partials, CfdPartial};
use detect::ViolationReport;
use minidb::{DbError, RowId, Schema, Table, Value};

use crate::router::ShardRouter;

pub(crate) fn db_err(e: DbError) -> CfdError {
    CfdError::Malformed(e.to_string())
}

/// Global-registry handles for the exchange telemetry, resolved once per
/// process. The scatter-side counters are bumped from the crossbeam worker
/// threads (the handles are plain atomics); the gather-side ones from the
/// coordinator. After every detect, partials exported == partials merged —
/// the gather loop consumes exactly what the scatter shipped (pinned by
/// `tests/metrics_invariants.rs`).
struct ClusterObs {
    shard_export_ns: Arc<obs::Histogram>,
    partials_exported: Arc<obs::Counter>,
    partials_merged: Arc<obs::Counter>,
    partials_computed: Arc<obs::Counter>,
    partials_reused: Arc<obs::Counter>,
    exported_groups: Arc<obs::Counter>,
    exported_members: Arc<obs::Counter>,
    detects: Arc<obs::Counter>,
    scatter_ns: Arc<obs::Histogram>,
    merge_ns: Arc<obs::Histogram>,
}

fn cluster_obs() -> &'static ClusterObs {
    static OBS: OnceLock<ClusterObs> = OnceLock::new();
    OBS.get_or_init(|| ClusterObs {
        shard_export_ns: obs::histogram("cluster_shard_export_ns"),
        partials_exported: obs::counter("cluster_partials_exported_total"),
        partials_merged: obs::counter("cluster_partials_merged_total"),
        partials_computed: obs::counter("cluster_partials_computed_total"),
        partials_reused: obs::counter("cluster_partials_reused_total"),
        exported_groups: obs::counter("cluster_exported_groups_total"),
        exported_members: obs::counter("cluster_exported_members_total"),
        detects: obs::counter("cluster_detects_total"),
        scatter_ns: obs::histogram("cluster_scatter_ns"),
        merge_ns: obs::histogram("cluster_merge_ns"),
    })
}

/// One shard: its slice of the relation plus derived columnar state.
pub(crate) struct Shard {
    pub(crate) table: Table,
    pub(crate) cache: SnapshotCache,
    /// Per-CFD memoized partial export, tagged with the table epoch it was
    /// computed at; freshness is decided by the cache's per-column epoch
    /// bookkeeping ([`SnapshotCache::fragment_fresh`]).
    memo: Vec<Option<(u64, Arc<CfdPartial>)>>,
}

/// What one shard hands back from the scatter phase.
struct ShardExport {
    partials: Vec<Arc<CfdPartial>>,
    computed: u64,
    reused: u64,
}

impl Shard {
    fn new(relation: &str, schema: Schema, n_cfds: usize) -> Shard {
        Shard {
            table: Table::new(relation, schema),
            cache: SnapshotCache::new(),
            memo: vec![None; n_cfds],
        }
    }

    /// The scatter phase on one shard: snapshot (cached / patched /
    /// re-encoded as the epoch dictates) and per-CFD partial export.
    fn export(&mut self, bound: &[BoundCfd], cols: &[Vec<usize>], needed: &[usize]) -> ShardExport {
        // Per-shard detect wall-time: one sample per shard per detect,
        // recorded from whichever worker thread ran this shard.
        let _span = obs::SpanTimer::new(Arc::clone(&cluster_obs().shard_export_ns));
        let snap = self.cache.snapshot_projected(&self.table, needed);
        let epoch = self.table.epoch();
        let mut out = ShardExport {
            partials: Vec::with_capacity(bound.len()),
            computed: 0,
            reused: 0,
        };
        for (i, b) in bound.iter().enumerate() {
            let sp = obs::trace::span("detect.cfd");
            sp.attr("cfd", i);
            match &self.memo[i] {
                Some((e, p)) if self.cache.fragment_fresh(*e, &cols[i]) => {
                    sp.attr("memo", "hit");
                    out.reused += 1;
                    out.partials.push(Arc::clone(p));
                }
                _ => {
                    sp.attr("memo", "recompute");
                    out.computed += 1;
                    let p = Arc::new(cfd_partial_one(&snap, b));
                    self.memo[i] = Some((epoch, Arc::clone(&p)));
                    out.partials.push(p);
                }
            }
        }
        let o = cluster_obs();
        o.partials_exported.add(out.partials.len() as u64);
        o.partials_computed.add(out.computed);
        o.partials_reused.add(out.reused);
        o.exported_groups
            .add(out.partials.iter().map(|p| p.n_groups() as u64).sum());
        o.exported_members
            .add(out.partials.iter().map(|p| p.n_members() as u64).sum());
        out
    }
}

/// Telemetry of the most recent [`ShardedQualityServer::detect`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectStats {
    /// Wall time of the scatter phase (snapshot + partial export, all
    /// shards, including thread fan-out overhead).
    pub scatter_ns: u64,
    /// Wall time of the coordinator merge.
    pub merge_ns: u64,
    /// LHS groups shipped across the exchange.
    pub exported_groups: u64,
    /// Per-row entries shipped (group members + constant violators) — the
    /// dominant term of the exchange volume.
    pub exported_members: u64,
    /// Partials recomputed this detect.
    pub partials_computed: u64,
    /// Partials replayed from a shard memo (rows and columns untouched).
    pub partials_reused: u64,
}

/// Sentinel in the dense owner map: this arena slot holds no live row.
const NO_SHARD: u32 = u32::MAX;

/// A quality server whose relation is partitioned across N shards.
pub struct ShardedQualityServer {
    relation: String,
    pub(crate) schema: Schema,
    pub(crate) cfds: Vec<Cfd>,
    router: Box<dyn ShardRouter>,
    pub(crate) shards: Vec<Shard>,
    /// Global row id → owning shard, dense by arena slot ([`NO_SHARD`] =
    /// not live). Row ids are small sequential integers, so a flat vector
    /// replaces the hash map that used to sit on every routed mutation —
    /// the same idiom as detect's dense `VioTally`.
    shard_of: Vec<u32>,
    /// Next global row id — the same sequence a single-node table would
    /// have assigned, which is what makes sharded reports id-compatible.
    next_row: u64,
    /// Scatter worker override; `None` defers to `SDQ_DETECT_THREADS` /
    /// available parallelism (see [`colstore::morsel::resolve_threads`]).
    detect_threads: Option<usize>,
    stats: DetectStats,
    /// The most recent scatter/gather report; dropped by any mutation.
    pub(crate) last_report: Option<ViolationReport>,
}

impl ShardedQualityServer {
    /// An empty cluster over `n_shards` shards (clamped to ≥ 1).
    pub fn new(
        relation: &str,
        schema: Schema,
        n_shards: usize,
        router: Box<dyn ShardRouter>,
    ) -> ShardedQualityServer {
        let n = n_shards.max(1);
        ShardedQualityServer {
            relation: relation.to_string(),
            schema: schema.clone(),
            cfds: Vec::new(),
            router,
            shards: (0..n)
                .map(|_| Shard::new(relation, schema.clone(), 0))
                .collect(),
            shard_of: Vec::new(),
            next_row: 0,
            detect_threads: None,
            stats: DetectStats::default(),
            last_report: None,
        }
    }

    /// Cap the scatter pool at `threads` workers (the pool is additionally
    /// clamped to the shard count per detect). Without this, the worker
    /// count comes from `SDQ_DETECT_THREADS` or available parallelism.
    pub fn with_detect_threads(mut self, threads: usize) -> ShardedQualityServer {
        self.detect_threads = Some(threads);
        self
    }

    /// Set the incremental-patch delta threshold of every shard's snapshot
    /// cache (see [`SnapshotCache::with_delta_threshold`]): the fraction of
    /// a shard's rows that may change before its next snapshot falls back
    /// to a full re-encode.
    pub fn with_delta_threshold(mut self, threshold: f64) -> ShardedQualityServer {
        for s in &mut self.shards {
            s.cache = std::mem::take(&mut s.cache).with_delta_threshold(threshold);
        }
        self
    }

    /// Bound the cluster's snapshot residency at `budget` bytes total:
    /// every shard's cache shares `store` and gets an equal slice of the
    /// budget, so a detect over shards much larger than memory faults
    /// spilled chunks back page-at-a-time instead of holding every shard
    /// resident (see [`SnapshotCache::with_spill`]).
    pub fn with_spill(
        mut self,
        store: std::sync::Arc<dyn colstore::ChunkStore>,
        budget: usize,
    ) -> ShardedQualityServer {
        let per_shard = budget / self.shards.len().max(1);
        for s in &mut self.shards {
            s.cache = std::mem::take(&mut s.cache).with_spill(Arc::clone(&store), per_shard);
        }
        self
    }

    /// Sealed snapshot chunks evicted to the spill store across shards
    /// (0 without [`ShardedQualityServer::with_spill`]).
    pub fn spilled_chunks(&self) -> u64 {
        self.shards.iter().map(|s| s.cache.spilled_chunks()).sum()
    }

    /// Partition an existing table across `n_shards` shards, preserving
    /// every row's id (the columnar snapshot of each shard is built lazily
    /// at the first detect).
    pub fn partition(
        table: &Table,
        n_shards: usize,
        router: Box<dyn ShardRouter>,
    ) -> CfdResult<ShardedQualityServer> {
        let mut me =
            ShardedQualityServer::new(table.name(), table.schema().clone(), n_shards, router);
        let n = me.shards.len();
        me.shard_of = vec![NO_SHARD; table.arena_size()];
        for (id, row) in table.iter() {
            let sid = me.router.route(row, n);
            me.shards[sid]
                .table
                .insert_at(id, row.to_vec())
                .map_err(db_err)?;
            me.shard_of[id.index()] = sid as u32;
        }
        me.next_row = table.arena_size() as u64;
        Ok(me)
    }

    /// Register the CFD set to detect (bound-checked against the schema
    /// now, so a later `detect` cannot fail on a bad rule). Replaces any
    /// previous set and drops every shard's partial memo.
    pub fn register_cfds(&mut self, cfds: Vec<Cfd>) -> CfdResult<()> {
        for c in &cfds {
            c.bind(&self.schema)?;
        }
        for s in &mut self.shards {
            s.memo = vec![None; cfds.len()];
        }
        self.cfds = cfds;
        self.last_report = None;
        Ok(())
    }

    /// The audited relation.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The registered CFDs.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Live rows per shard — the placement balance.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.table.len()).collect()
    }

    /// Total live rows across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.table.len()).sum()
    }

    /// True when no shard holds a live row.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read access to one shard's table (rows live under global ids).
    pub fn shard_table(&self, shard: usize) -> &Table {
        &self.shards[shard].table
    }

    /// The shard owning a row, if the row is live.
    pub fn shard_of(&self, id: RowId) -> Option<usize> {
        self.shard_of
            .get(id.index())
            .filter(|&&s| s != NO_SHARD)
            .map(|&s| s as usize)
    }

    /// Record `id` as owned by `sid`, growing the dense map as ids move
    /// forward.
    fn set_shard(&mut self, id: RowId, sid: usize) {
        if id.index() >= self.shard_of.len() {
            self.shard_of.resize(id.index() + 1, NO_SHARD);
        }
        self.shard_of[id.index()] = sid as u32;
    }

    /// Record `id` as no longer live.
    fn clear_shard(&mut self, id: RowId) {
        if let Some(slot) = self.shard_of.get_mut(id.index()) {
            *slot = NO_SHARD;
        }
    }

    /// Total full snapshot encodes across shards (the steady-state probe:
    /// a detect→mutate→detect loop must keep this at one per shard).
    pub fn snapshot_encodes(&self) -> u64 {
        self.shards.iter().map(|s| s.cache.encodes()).sum()
    }

    /// Telemetry of the most recent `detect` call.
    pub fn last_detect_stats(&self) -> DetectStats {
        self.stats
    }

    // ---------------------------------------------------------- mutations

    /// Insert a row: the router picks the shard, the cluster assigns the
    /// next global id, and the shard's snapshot cache patches in lock-step.
    pub fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
        let sid = self.router.route(&row, self.shards.len());
        let id = RowId(self.next_row);
        let shard = &mut self.shards[sid];
        shard.table.insert_at(id, row).map_err(db_err)?;
        shard.cache.note_insert(&shard.table, id);
        self.set_shard(id, sid);
        self.next_row += 1;
        self.last_report = None;
        Ok(id)
    }

    /// Delete a row by global id; returns its values.
    pub fn delete(&mut self, id: RowId) -> CfdResult<Vec<Value>> {
        let sid = self.owning_shard(id)?;
        let shard = &mut self.shards[sid];
        let old = shard.table.delete(id).map_err(db_err)?;
        shard.cache.note_delete(&shard.table, id);
        self.clear_shard(id);
        self.last_report = None;
        Ok(old)
    }

    /// Overwrite one cell by global id; returns the previous value.
    pub fn update_cell(&mut self, id: RowId, col: usize, value: Value) -> CfdResult<Value> {
        let sid = self.owning_shard(id)?;
        let shard = &mut self.shards[sid];
        let old = shard.table.update_cell(id, col, value).map_err(db_err)?;
        shard.cache.note_set_cell(&shard.table, id, col);
        self.last_report = None;
        Ok(old)
    }

    /// Apply a whole mutation batch — the cluster's high-throughput
    /// ingest path (experiment `e10`):
    ///
    /// 1. **One routing pass** assigns global ids, resolves owners, and
    ///    groups the mutations into per-shard op lists.
    /// 2. **Per-shard application** replays each shard's list against its
    ///    table in one tight loop — runs of inserts go through the bulk
    ///    [`Table::insert_at_many`] (validate-then-write, one arena
    ///    extension) — and then patches that shard's snapshot exactly
    ///    once ([`SnapshotCache::note_batch`]).
    ///
    /// Per-shard order is exactly batch order (later entries may
    /// reference earlier inserts); cross-shard order is immaterial, since
    /// every mutation touches exactly one shard — which is also what lets
    /// the per-shard phase fan out across cores. Failure granularity is
    /// per shard: a bad mutation stops *its shard's* remaining work (a
    /// routing failure additionally stops planning of later mutations),
    /// sibling shards complete, every applied op is patched, and the
    /// first error is returned.
    pub fn apply_batch(&mut self, batch: MutationBatch) -> CfdResult<BatchOutcome> {
        enum ShardOp {
            Insert(RowId, Vec<Value>),
            Delete(RowId),
            Set(RowId, usize, Value),
        }

        let n = self.shards.len();
        let mut outcome = BatchOutcome::default();
        // Route: one pass, no table work. The id map is updated
        // optimistically and reconciled below for ops a shard rejects.
        let inserts = batch
            .mutations
            .iter()
            .filter(|m| matches!(m, Mutation::Insert(_)))
            .count();
        outcome.inserted.reserve(inserts);
        self.shard_of
            .resize(self.next_row as usize + inserts, NO_SHARD);
        let mut plans: Vec<Vec<ShardOp>> = (0..n)
            .map(|_| Vec::with_capacity(batch.len() / n + 1))
            .collect();
        let mut failed: Option<CfdError> = None;
        for m in batch.mutations {
            match m {
                Mutation::Insert(row) => {
                    let sid = self.router.route(&row, n);
                    let id = RowId(self.next_row);
                    self.next_row += 1;
                    self.shard_of[id.index()] = sid as u32;
                    outcome.inserted.push(id);
                    plans[sid].push(ShardOp::Insert(id, row));
                }
                Mutation::Delete(id) => match self.owning_shard(id) {
                    Ok(sid) => {
                        self.shard_of[id.index()] = NO_SHARD;
                        plans[sid].push(ShardOp::Delete(id));
                    }
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                },
                Mutation::SetCell { row, col, value } => match self.owning_shard(row) {
                    Ok(sid) => plans[sid].push(ShardOp::Set(row, col, value)),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                },
            }
        }

        // Apply per shard: table ops in plan order, then one snapshot
        // patch per touched shard.
        for (sid, (shard, plan)) in self.shards.iter_mut().zip(plans).enumerate() {
            let mut deltas: Vec<TableDelta> = Vec::with_capacity(plan.len());
            let mut err: Option<DbError> = None;
            let mut ops = plan.into_iter().peekable();
            'shard: while let Some(op) = ops.next() {
                match op {
                    ShardOp::Insert(id, row) => {
                        // Collect the maximal insert run for the bulk path.
                        let mut run = vec![(id, row)];
                        while let Some(ShardOp::Insert(..)) = ops.peek() {
                            let Some(ShardOp::Insert(id, row)) = ops.next() else {
                                unreachable!("peeked an insert");
                            };
                            run.push((id, row));
                        }
                        let ids: Vec<RowId> = run.iter().map(|(id, _)| *id).collect();
                        match shard.table.insert_at_many(run) {
                            Ok(()) => deltas.extend(ids.into_iter().map(TableDelta::Inserted)),
                            Err(e) => {
                                // The run is rejected as a unit (validate-
                                // then-write); un-map its ids.
                                for id in ids {
                                    self.shard_of[id.index()] = NO_SHARD;
                                }
                                err = Some(e);
                                break 'shard;
                            }
                        }
                    }
                    ShardOp::Delete(id) => match shard.table.delete(id) {
                        Ok(_) => deltas.push(TableDelta::Deleted(id)),
                        Err(e) => {
                            err = Some(e);
                            break 'shard;
                        }
                    },
                    ShardOp::Set(id, col, value) => match shard.table.update_cell(id, col, value) {
                        Ok(_) => deltas.push(TableDelta::CellSet(id, col)),
                        Err(e) => {
                            err = Some(e);
                            break 'shard;
                        }
                    },
                }
            }
            if err.is_some() {
                // Reconcile the optimistic id map for this shard's
                // unapplied suffix: planned inserts never landed, planned
                // deletes never removed their row.
                for op in ops {
                    match op {
                        ShardOp::Insert(id, _) => {
                            self.shard_of[id.index()] = NO_SHARD;
                        }
                        ShardOp::Delete(id) => {
                            // Restore only rows that actually exist — a
                            // delete of a row whose own insert was in the
                            // rejected part of this batch must not
                            // resurrect a ghost owner mapping.
                            if shard.table.contains(id) {
                                self.shard_of[id.index()] = sid as u32;
                            }
                        }
                        ShardOp::Set(..) => {}
                    }
                }
            }
            outcome.applied += deltas.len();
            shard.cache.note_batch(&shard.table, &deltas);
            if let (Some(e), None) = (err, &failed) {
                failed = Some(db_err(e));
            }
        }
        self.last_report = None;
        match failed {
            None => Ok(outcome),
            Some(e) => Err(e),
        }
    }

    pub(crate) fn owning_shard(&self, id: RowId) -> CfdResult<usize> {
        self.shard_of(id)
            .ok_or_else(|| db_err(DbError::BadRowId(id.0)))
    }

    // ---------------------------------------------------------- detection

    /// Scatter/gather detection: shard-local partial export (parallel
    /// across shards) followed by the coordinator merge. The result is
    /// `normalized()`-equal to single-node columnar detection over the
    /// union of the shards' rows.
    pub fn detect(&mut self) -> CfdResult<ViolationReport> {
        let bound: Vec<BoundCfd> = self
            .cfds
            .iter()
            .map(|c| c.bind(&self.schema))
            .collect::<CfdResult<_>>()?;
        let cols: Vec<Vec<usize>> = bound
            .iter()
            .map(|b| b.lhs_cols.iter().copied().chain([b.rhs_col]).collect())
            .collect();
        let mut needed: Vec<usize> = cols.iter().flatten().copied().collect();
        needed.sort_unstable();
        needed.dedup();

        // Scatter: one morsel per shard on the shared detection pool. The
        // pool size comes from the same knob as within-shard detection
        // (builder override, else `SDQ_DETECT_THREADS` / parallelism) and
        // `run_morsels` clamps it to the shard count — one pool, never the
        // old shards × threads oversubscription.
        let t0 = Instant::now();
        let scatter_span = obs::trace::span("cluster.scatter");
        let workers = colstore::morsel::resolve_threads(self.detect_threads);
        let (bound_ref, cols_ref, needed_ref) = (&bound, &cols, &needed);
        let slots: Vec<std::sync::Mutex<&mut Shard>> =
            self.shards.iter_mut().map(std::sync::Mutex::new).collect();
        let exports: Vec<ShardExport> = colstore::morsel::run_morsels(workers, slots.len(), |i| {
            // Uncontended: each index is claimed by exactly one worker; the
            // mutex only converts the shared borrow into the exclusive one
            // the export needs. The span lands on whichever pool worker
            // ran the shard, parented under `cluster.scatter` through the
            // context the pool propagated.
            let sp = obs::trace::span("shard.export");
            sp.attr("shard", i);
            let mut shard = slots[i].lock().expect("shard slot lock");
            shard.export(bound_ref, cols_ref, needed_ref)
        })
        .into_iter()
        .map(|e| e.expect("every shard exports"))
        .collect();
        drop(slots);
        drop(scatter_span);
        let scatter_ns = t0.elapsed().as_nanos() as u64;

        // Gather: merge per CFD across shards. Each pass consumes one
        // partial per shard, so merges consumed == partials exported.
        let t1 = Instant::now();
        let merge_span = obs::trace::span("cluster.merge");
        merge_span.attr("shards", exports.len());
        let mut report = ViolationReport::default();
        for idx in 0..bound.len() {
            merge_cfd_partials(
                idx,
                exports.iter().map(|e| e.partials[idx].as_ref()),
                &mut report,
            );
            cluster_obs().partials_merged.add(exports.len() as u64);
        }
        drop(merge_span);
        let merge_ns = t1.elapsed().as_nanos() as u64;
        let o = cluster_obs();
        o.detects.inc();
        o.scatter_ns.record(scatter_ns);
        o.merge_ns.record(merge_ns);
        self.stats = DetectStats {
            scatter_ns,
            merge_ns,
            exported_groups: exports
                .iter()
                .flat_map(|e| &e.partials)
                .map(|p| p.n_groups() as u64)
                .sum(),
            exported_members: exports
                .iter()
                .flat_map(|e| &e.partials)
                .map(|p| p.n_members() as u64)
                .sum(),
            partials_computed: exports.iter().map(|e| e.computed).sum(),
            partials_reused: exports.iter().map(|e| e.reused).sum(),
        };
        self.last_report = Some(report.clone());
        Ok(report)
    }

    /// The most recent scatter/gather report, if no mutation has landed
    /// since it was computed.
    pub fn last_report(&self) -> Option<&ViolationReport> {
        self.last_report.as_ref()
    }

    /// Data auditor over the sharded relation: the Fig. 4 quality report,
    /// built on the merged scatter/gather detection report (runs a detect
    /// first if no report is cached) over the materialized union of the
    /// shards — `normalized()`-identical inputs to the single-node
    /// auditor, so dirty fractions agree exactly.
    pub fn audit(&mut self) -> CfdResult<QualityReport> {
        let report = match &self.last_report {
            Some(r) => r.clone(),
            None => self.detect()?,
        };
        let merged = self.merged_table()?;
        quality_report(&merged, &self.cfds, &report)
    }

    /// Materialize the union of the shards as one table, every row under
    /// its global id — exactly the table a single-node server over the
    /// same data would hold. O(rows); used by the auditor and by
    /// conformance checks, not by detection (which exchanges compact
    /// per-group partials instead).
    pub fn merged_table(&self) -> CfdResult<Table> {
        let mut rows: Vec<(RowId, &[Value])> =
            self.shards.iter().flat_map(|s| s.table.iter()).collect();
        rows.sort_unstable_by_key(|(id, _)| *id);
        let mut merged = Table::new(&self.relation, self.schema.clone());
        for (id, row) in rows {
            merged.insert_at(id, row.to_vec()).map_err(db_err)?;
        }
        Ok(merged)
    }
}

/// The unified-API view of the cluster. Repair is a first-class cluster
/// capability: [`ShardedQualityServer::repair`] (see `crate::repair`)
/// builds global equivalence classes over the detection exchange's merged
/// per-group partials and routes the resulting cell changes back to their
/// owning shards, so the trait's `repair()` reports the wire-friendly
/// summary like the single-node server's does.
impl QualityBackend for ShardedQualityServer {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            backend: "sharded-cluster".into(),
            repair: true,
            streaming: false,
            shards: self.shards.len(),
            metrics: true,
            trace: true,
        }
    }

    fn register_cfds(&mut self, text: &str) -> CfdResult<usize> {
        ShardedQualityServer::register_cfds(self, parse_cfds(text)?)?;
        Ok(self.cfds.len())
    }

    fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
        ShardedQualityServer::insert(self, row)
    }

    fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>> {
        ShardedQualityServer::delete(self, row)
    }

    fn update_cell(&mut self, row: RowId, col: usize, value: Value) -> CfdResult<Value> {
        ShardedQualityServer::update_cell(self, row, col, value)
    }

    fn apply_batch(&mut self, batch: MutationBatch) -> CfdResult<BatchOutcome> {
        ShardedQualityServer::apply_batch(self, batch)
    }

    fn detect(&mut self) -> CfdResult<ViolationReport> {
        ShardedQualityServer::detect(self)
    }

    fn audit(&mut self) -> CfdResult<QualityReport> {
        ShardedQualityServer::audit(self)
    }

    fn last_report(&self) -> Option<ViolationReport> {
        self.last_report.clone()
    }

    fn len(&self) -> usize {
        ShardedQualityServer::len(self)
    }

    fn repair(&mut self) -> CfdResult<RepairSummary> {
        let r = ShardedQualityServer::repair(self)?;
        Ok(RepairSummary {
            changes: r.changes.len(),
            iterations: r.iterations,
            total_cost: r.total_cost,
            residual: r.residual.len(),
        })
    }

    fn export_rows(&self) -> CfdResult<Vec<(RowId, Vec<Value>)>> {
        // Id order across shards — the union a single-node table would
        // export, so a cluster checkpoint restores onto any shard count.
        let mut rows: Vec<(RowId, Vec<Value>)> = self
            .shards
            .iter()
            .flat_map(|s| s.table.iter().map(|(id, r)| (id, r.to_vec())))
            .collect();
        rows.sort_unstable_by_key(|(id, _)| *id);
        Ok(rows)
    }

    fn restore_row(&mut self, id: RowId, row: Vec<Value>) -> CfdResult<()> {
        // Route exactly like a live insert, but keep the checkpointed id —
        // the router sees the same values, so the row lands on the shard
        // it lived on (for the same shard count; a different count is a
        // legitimate re-partition).
        let sid = self.router.route(&row, self.shards.len());
        let shard = &mut self.shards[sid];
        shard.table.insert_at(id, row).map_err(db_err)?;
        shard.cache.note_insert(&shard.table, id);
        self.set_shard(id, sid);
        self.next_row = self.next_row.max(id.0 + 1);
        self.last_report = None;
        Ok(())
    }

    fn next_row_id(&self) -> CfdResult<u64> {
        Ok(self.next_row)
    }

    fn restore_arena(&mut self, next: u64) -> CfdResult<()> {
        self.next_row = self.next_row.max(next);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{HashRouter, RoundRobinRouter};
    use colstore::detect_columnar;
    use datagen::dirty_customers;

    fn single_node(rows: usize, noise: f64, seed: u64) -> (Table, Vec<Cfd>) {
        let d = dirty_customers(rows, noise, seed);
        (d.db.table("customer").unwrap().clone(), d.cfds)
    }

    fn assert_cluster_matches(table: &Table, cfds: &[Cfd], mut c: ShardedQualityServer) {
        c.register_cfds(cfds.to_vec()).unwrap();
        let sharded = c.detect().unwrap().normalized();
        let single = detect_columnar(table, cfds).unwrap().normalized();
        assert_eq!(sharded, single);
    }

    #[test]
    fn partitioned_detection_matches_single_node() {
        let (t, cfds) = single_node(400, 0.06, 41);
        for n in [1usize, 2, 4, 7] {
            let c = ShardedQualityServer::partition(&t, n, Box::new(RoundRobinRouter::default()))
                .unwrap();
            assert_eq!(c.len(), t.len());
            assert_cluster_matches(&t, &cfds, c);
        }
    }

    #[test]
    fn hash_router_matches_too() {
        let (t, cfds) = single_node(300, 0.08, 42);
        // Key on CNT (column 1): variable-CFD groups over [CNT, ZIP] split
        // less, constant rules unaffected.
        let c = ShardedQualityServer::partition(&t, 4, Box::new(HashRouter::new(vec![1]))).unwrap();
        assert_cluster_matches(&t, &cfds, c);
    }

    #[test]
    fn routed_updates_keep_cluster_exact() {
        let (mut t, cfds) = single_node(200, 0.05, 43);
        let mut c =
            ShardedQualityServer::partition(&t, 3, Box::new(RoundRobinRouter::default())).unwrap();
        c.register_cfds(cfds.clone()).unwrap();
        // Warm the shard snapshots, then stream identical mutations into
        // both the cluster and the reference table.
        c.detect().unwrap();
        let encodes = c.snapshot_encodes();
        assert_eq!(encodes, 3, "one encode per shard");
        let ids = t.row_ids();
        for (i, &id) in ids.iter().take(12).enumerate() {
            let v = Value::str(format!("CITY{i}"));
            t.update_cell(id, 2, v.clone()).unwrap();
            c.update_cell(id, 2, v).unwrap();
        }
        let victim = ids[20];
        t.delete(victim).unwrap();
        c.delete(victim).unwrap();
        let donor: Vec<Value> = t.iter().next().unwrap().1.to_vec();
        let id_t = t.insert(donor.clone()).unwrap();
        let id_c = c.insert(donor).unwrap();
        assert_eq!(id_t, id_c, "global id allocation mirrors single-node");
        let sharded = c.detect().unwrap().normalized();
        let single = detect_columnar(&t, &cfds).unwrap().normalized();
        assert_eq!(sharded, single);
        assert_eq!(
            c.snapshot_encodes(),
            encodes,
            "routed mutations patch shard snapshots, never re-encode"
        );
    }

    #[test]
    fn unchanged_shards_reuse_their_partials() {
        let (t, cfds) = single_node(150, 0.05, 44);
        let mut c =
            ShardedQualityServer::partition(&t, 2, Box::new(RoundRobinRouter::default())).unwrap();
        c.register_cfds(cfds.clone()).unwrap();
        c.detect().unwrap();
        let first = c.last_detect_stats();
        assert_eq!(first.partials_computed, 2 * cfds.len() as u64);
        c.detect().unwrap();
        let second = c.last_detect_stats();
        assert_eq!(second.partials_computed, 0, "nothing changed");
        assert_eq!(second.partials_reused, 2 * cfds.len() as u64);
        // Touch one cell on one shard: only that shard's affected CFDs
        // recompute.
        let id = c.shard_table(0).iter().next().unwrap().0;
        let old = c.shard_table(0).get(id).unwrap()[2].clone();
        c.update_cell(id, 2, Value::str("ELSEWHERE")).unwrap();
        c.update_cell(id, 2, old).unwrap();
        c.detect().unwrap();
        let third = c.last_detect_stats();
        assert!(
            third.partials_reused >= cfds.len() as u64,
            "shard 1 untouched"
        );
        assert!(third.partials_computed < 2 * cfds.len() as u64);
    }

    #[test]
    fn apply_batch_matches_per_row_application() {
        let (t, cfds) = single_node(300, 0.05, 48);
        let mut batched =
            ShardedQualityServer::partition(&t, 3, Box::new(RoundRobinRouter::default())).unwrap();
        let mut stepped =
            ShardedQualityServer::partition(&t, 3, Box::new(RoundRobinRouter::default())).unwrap();
        batched.register_cfds(cfds.clone()).unwrap();
        stepped.register_cfds(cfds.clone()).unwrap();
        // Warm both so the batch lands on cached shard snapshots.
        batched.detect().unwrap();
        stepped.detect().unwrap();
        let encodes = batched.snapshot_encodes();
        let ids = t.row_ids();
        let donor: Vec<Value> = t.iter().next().unwrap().1.to_vec();
        let muts = vec![
            Mutation::Insert(donor.clone()),
            Mutation::SetCell {
                row: ids[5],
                col: 2,
                value: Value::str("BATCHCITY"),
            },
            Mutation::Delete(ids[9]),
            Mutation::Insert(donor),
            Mutation::SetCell {
                row: ids[11],
                col: 1,
                value: Value::str("ZZ"),
            },
        ];
        for m in muts.clone() {
            api::apply_mutation(&mut stepped, m).unwrap();
        }
        let out = batched
            .apply_batch(MutationBatch { mutations: muts })
            .unwrap();
        assert_eq!(out.applied, 5);
        assert_eq!(out.inserted.len(), 2);
        assert_eq!(
            batched.detect().unwrap().normalized(),
            stepped.detect().unwrap().normalized()
        );
        assert_eq!(
            batched.snapshot_encodes(),
            encodes,
            "the batch patched shard snapshots, never re-encoded"
        );
    }

    #[test]
    fn failed_batch_keeps_prefix_and_stays_coherent() {
        let (t, cfds) = single_node(60, 0.05, 49);
        let mut c =
            ShardedQualityServer::partition(&t, 2, Box::new(RoundRobinRouter::default())).unwrap();
        c.register_cfds(cfds.clone()).unwrap();
        c.detect().unwrap();
        let donor: Vec<Value> = t.iter().next().unwrap().1.to_vec();
        let err = c.apply_batch(MutationBatch {
            mutations: vec![
                Mutation::Insert(donor),
                Mutation::Delete(RowId(9_999)), // fails
                Mutation::Delete(RowId(0)),     // never reached
            ],
        });
        assert!(err.is_err());
        assert_eq!(c.len(), t.len() + 1, "prefix applied, suffix not");
        assert!(
            c.shard_of(RowId(0)).is_some(),
            "unreached delete not applied"
        );
        // Derived state is still coherent: detect equals single-node over
        // the actual (prefix-mutated) data.
        let mut reference = t.clone();
        let first: Vec<Value> = reference.iter().next().unwrap().1.to_vec();
        let id = reference.insert(first).unwrap();
        assert_eq!(id, RowId(t.arena_size() as u64));
        assert_eq!(
            c.detect().unwrap().normalized(),
            detect_columnar(&reference, &cfds).unwrap().normalized()
        );
    }

    #[test]
    fn rejected_insert_run_leaves_no_ghost_mapping() {
        // An insert whose run is rejected at apply time, followed in the
        // same batch by a delete of that id: the reconcile pass must not
        // resurrect an owner mapping for a row that never existed.
        let (t, cfds) = single_node(40, 0.0, 52);
        let mut c =
            ShardedQualityServer::partition(&t, 2, Box::new(RoundRobinRouter::default())).unwrap();
        c.register_cfds(cfds).unwrap();
        let ghost = RowId(t.arena_size() as u64);
        let err = c.apply_batch(MutationBatch {
            mutations: vec![
                Mutation::Insert(vec![Value::str("wrong-arity")]),
                Mutation::Delete(ghost),
            ],
        });
        assert!(err.is_err());
        assert!(
            c.shard_of(ghost).is_none(),
            "rejected insert must not leave an owner mapping"
        );
        assert!(c.delete(ghost).is_err(), "ghost row is not addressable");
        assert_eq!(c.len(), t.len());
        // Derived state is untouched: detection still matches single-node
        // over the original data.
        let cfds = c.cfds().to_vec();
        assert_eq!(
            c.detect().unwrap().normalized(),
            detect_columnar(&t, &cfds).unwrap().normalized()
        );
    }

    #[test]
    fn audit_matches_single_node_dirty_fraction() {
        let d = datagen::dirty_customers(400, 0.06, 50);
        let t = d.db.table("customer").unwrap();
        let mut c =
            ShardedQualityServer::partition(t, 4, Box::new(HashRouter::new(vec![1]))).unwrap();
        c.register_cfds(d.cfds.clone()).unwrap();
        let sharded = c.audit().unwrap();
        let single =
            audit::quality_report(t, &d.cfds, &detect_columnar(t, &d.cfds).unwrap()).unwrap();
        assert_eq!(sharded.tuples, single.tuples);
        assert_eq!(sharded.tuple_classes, single.tuple_classes);
        assert_eq!(sharded.dirty_fraction(), single.dirty_fraction());
    }

    #[test]
    fn last_report_tracks_mutations() {
        let (t, cfds) = single_node(50, 0.05, 51);
        let mut c =
            ShardedQualityServer::partition(&t, 2, Box::new(RoundRobinRouter::default())).unwrap();
        c.register_cfds(cfds).unwrap();
        assert!(c.last_report().is_none());
        c.detect().unwrap();
        assert!(c.last_report().is_some());
        let donor: Vec<Value> = t.iter().next().unwrap().1.to_vec();
        c.insert(donor).unwrap();
        assert!(
            c.last_report().is_none(),
            "mutation drops the cached report"
        );
    }

    #[test]
    fn unknown_row_errors() {
        let (t, _) = single_node(50, 0.0, 45);
        let mut c =
            ShardedQualityServer::partition(&t, 2, Box::new(RoundRobinRouter::default())).unwrap();
        assert!(c.delete(RowId(9_999)).is_err());
        assert!(c.update_cell(RowId(9_999), 0, Value::Null).is_err());
    }

    #[test]
    fn empty_cluster_detects_nothing() {
        let (t, cfds) = single_node(10, 0.0, 46);
        let mut c = ShardedQualityServer::new(
            "customer",
            t.schema().clone(),
            4,
            Box::new(HashRouter::default()),
        );
        c.register_cfds(cfds).unwrap();
        assert!(c.is_empty());
        assert!(c.detect().unwrap().is_empty());
    }
}
