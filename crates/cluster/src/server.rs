//! The sharded quality server: scatter/gather CFD detection over
//! partitioned colstore shards.
//!
//! A [`ShardedQualityServer`] hash- or round-robin-partitions one relation
//! across N shards. Each shard owns a [`minidb::Table`] holding its rows
//! **under their global row ids** (via [`Table::insert_at`] — no id
//! translation anywhere) plus its own epoch-versioned
//! [`colstore::SnapshotCache`], so routed mutations patch each shard's
//! dictionary-encoded snapshot incrementally exactly like a single-node
//! server's.
//!
//! Detection is scatter/gather:
//!
//! 1. **Scatter** — every shard (fanned out over `crossbeam` scoped
//!    threads) exports one [`CfdPartial`] per CFD from its cached
//!    snapshot: constant CFDs resolve fully shard-local; variable CFDs
//!    export the per-group partial state of `detect::exchange`. Exports
//!    are memoized per shard per CFD against the cache's per-column
//!    epochs — a shard whose rows and relevant columns are untouched
//!    since the last detect ships the same `Arc` again.
//! 2. **Gather** — the coordinator merges the partials
//!    ([`merge_cfd_partials`]): singles concatenate, groups union by LHS
//!    key, and any merged group with ≥ 2 distinct RHS values becomes a
//!    violation — whether the disagreement sat inside one shard or only
//!    exists across shards.
//!
//! The merged [`ViolationReport`] is `normalized()`-equal to single-node
//! [`colstore::detect_columnar`] over the union of the rows, for every
//! router and shard count (`tests/sharded_cluster.rs` pins this by
//! property).

use std::sync::Arc;
use std::time::Instant;

use cfd::{BoundCfd, Cfd, CfdError, CfdResult};
use colstore::{cfd_partial_one, SnapshotCache};
use detect::exchange::{merge_cfd_partials, CfdPartial};
use detect::fxhash::FxHashMap;
use detect::ViolationReport;
use minidb::{DbError, RowId, Schema, Table, Value};

use crate::router::ShardRouter;

fn db_err(e: DbError) -> CfdError {
    CfdError::Malformed(e.to_string())
}

/// One shard: its slice of the relation plus derived columnar state.
struct Shard {
    table: Table,
    cache: SnapshotCache,
    /// Per-CFD memoized partial export, tagged with the table epoch it was
    /// computed at; freshness is decided by the cache's per-column epoch
    /// bookkeeping ([`SnapshotCache::fragment_fresh`]).
    memo: Vec<Option<(u64, Arc<CfdPartial>)>>,
}

/// What one shard hands back from the scatter phase.
struct ShardExport {
    partials: Vec<Arc<CfdPartial>>,
    computed: u64,
    reused: u64,
}

impl Shard {
    fn new(relation: &str, schema: Schema, n_cfds: usize) -> Shard {
        Shard {
            table: Table::new(relation, schema),
            cache: SnapshotCache::new(),
            memo: vec![None; n_cfds],
        }
    }

    /// The scatter phase on one shard: snapshot (cached / patched /
    /// re-encoded as the epoch dictates) and per-CFD partial export.
    fn export(&mut self, bound: &[BoundCfd], cols: &[Vec<usize>], needed: &[usize]) -> ShardExport {
        let snap = self.cache.snapshot_projected(&self.table, needed);
        let epoch = self.table.epoch();
        let mut out = ShardExport {
            partials: Vec::with_capacity(bound.len()),
            computed: 0,
            reused: 0,
        };
        for (i, b) in bound.iter().enumerate() {
            match &self.memo[i] {
                Some((e, p)) if self.cache.fragment_fresh(*e, &cols[i]) => {
                    out.reused += 1;
                    out.partials.push(Arc::clone(p));
                }
                _ => {
                    out.computed += 1;
                    let p = Arc::new(cfd_partial_one(&snap, b));
                    self.memo[i] = Some((epoch, Arc::clone(&p)));
                    out.partials.push(p);
                }
            }
        }
        out
    }
}

/// Telemetry of the most recent [`ShardedQualityServer::detect`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectStats {
    /// Wall time of the scatter phase (snapshot + partial export, all
    /// shards, including thread fan-out overhead).
    pub scatter_ns: u64,
    /// Wall time of the coordinator merge.
    pub merge_ns: u64,
    /// LHS groups shipped across the exchange.
    pub exported_groups: u64,
    /// Per-row entries shipped (group members + constant violators) — the
    /// dominant term of the exchange volume.
    pub exported_members: u64,
    /// Partials recomputed this detect.
    pub partials_computed: u64,
    /// Partials replayed from a shard memo (rows and columns untouched).
    pub partials_reused: u64,
}

/// A quality server whose relation is partitioned across N shards.
pub struct ShardedQualityServer {
    relation: String,
    schema: Schema,
    cfds: Vec<Cfd>,
    router: Box<dyn ShardRouter>,
    shards: Vec<Shard>,
    /// Global row id → owning shard.
    shard_of: FxHashMap<RowId, u32>,
    /// Next global row id — the same sequence a single-node table would
    /// have assigned, which is what makes sharded reports id-compatible.
    next_row: u64,
    stats: DetectStats,
}

impl ShardedQualityServer {
    /// An empty cluster over `n_shards` shards (clamped to ≥ 1).
    pub fn new(
        relation: &str,
        schema: Schema,
        n_shards: usize,
        router: Box<dyn ShardRouter>,
    ) -> ShardedQualityServer {
        let n = n_shards.max(1);
        ShardedQualityServer {
            relation: relation.to_string(),
            schema: schema.clone(),
            cfds: Vec::new(),
            router,
            shards: (0..n)
                .map(|_| Shard::new(relation, schema.clone(), 0))
                .collect(),
            shard_of: FxHashMap::default(),
            next_row: 0,
            stats: DetectStats::default(),
        }
    }

    /// Partition an existing table across `n_shards` shards, preserving
    /// every row's id (the columnar snapshot of each shard is built lazily
    /// at the first detect).
    pub fn partition(
        table: &Table,
        n_shards: usize,
        router: Box<dyn ShardRouter>,
    ) -> CfdResult<ShardedQualityServer> {
        let mut me =
            ShardedQualityServer::new(table.name(), table.schema().clone(), n_shards, router);
        let n = me.shards.len();
        for (id, row) in table.iter() {
            let sid = me.router.route(row, n);
            me.shards[sid]
                .table
                .insert_at(id, row.to_vec())
                .map_err(db_err)?;
            me.shard_of.insert(id, sid as u32);
        }
        me.next_row = table.arena_size() as u64;
        Ok(me)
    }

    /// Register the CFD set to detect (bound-checked against the schema
    /// now, so a later `detect` cannot fail on a bad rule). Replaces any
    /// previous set and drops every shard's partial memo.
    pub fn register_cfds(&mut self, cfds: Vec<Cfd>) -> CfdResult<()> {
        for c in &cfds {
            c.bind(&self.schema)?;
        }
        for s in &mut self.shards {
            s.memo = vec![None; cfds.len()];
        }
        self.cfds = cfds;
        Ok(())
    }

    /// The audited relation.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The registered CFDs.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Live rows per shard — the placement balance.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.table.len()).collect()
    }

    /// Total live rows across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.table.len()).sum()
    }

    /// True when no shard holds a live row.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read access to one shard's table (rows live under global ids).
    pub fn shard_table(&self, shard: usize) -> &Table {
        &self.shards[shard].table
    }

    /// The shard owning a row, if the row is live.
    pub fn shard_of(&self, id: RowId) -> Option<usize> {
        self.shard_of.get(&id).map(|&s| s as usize)
    }

    /// Total full snapshot encodes across shards (the steady-state probe:
    /// a detect→mutate→detect loop must keep this at one per shard).
    pub fn snapshot_encodes(&self) -> u64 {
        self.shards.iter().map(|s| s.cache.encodes()).sum()
    }

    /// Telemetry of the most recent `detect` call.
    pub fn last_detect_stats(&self) -> DetectStats {
        self.stats
    }

    // ---------------------------------------------------------- mutations

    /// Insert a row: the router picks the shard, the cluster assigns the
    /// next global id, and the shard's snapshot cache patches in lock-step.
    pub fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
        let sid = self.router.route(&row, self.shards.len());
        let id = RowId(self.next_row);
        let shard = &mut self.shards[sid];
        shard.table.insert_at(id, row).map_err(db_err)?;
        shard.cache.note_insert(&shard.table, id);
        self.shard_of.insert(id, sid as u32);
        self.next_row += 1;
        Ok(id)
    }

    /// Delete a row by global id; returns its values.
    pub fn delete(&mut self, id: RowId) -> CfdResult<Vec<Value>> {
        let sid = self.owning_shard(id)?;
        let shard = &mut self.shards[sid];
        let old = shard.table.delete(id).map_err(db_err)?;
        shard.cache.note_delete(&shard.table, id);
        self.shard_of.remove(&id);
        Ok(old)
    }

    /// Overwrite one cell by global id; returns the previous value.
    pub fn update_cell(&mut self, id: RowId, col: usize, value: Value) -> CfdResult<Value> {
        let sid = self.owning_shard(id)?;
        let shard = &mut self.shards[sid];
        let old = shard.table.update_cell(id, col, value).map_err(db_err)?;
        shard.cache.note_set_cell(&shard.table, id, col);
        Ok(old)
    }

    fn owning_shard(&self, id: RowId) -> CfdResult<usize> {
        self.shard_of
            .get(&id)
            .map(|&s| s as usize)
            .ok_or_else(|| db_err(DbError::BadRowId(id.0)))
    }

    // ---------------------------------------------------------- detection

    /// Scatter/gather detection: shard-local partial export (parallel
    /// across shards) followed by the coordinator merge. The result is
    /// `normalized()`-equal to single-node columnar detection over the
    /// union of the shards' rows.
    pub fn detect(&mut self) -> CfdResult<ViolationReport> {
        let bound: Vec<BoundCfd> = self
            .cfds
            .iter()
            .map(|c| c.bind(&self.schema))
            .collect::<CfdResult<_>>()?;
        let cols: Vec<Vec<usize>> = bound
            .iter()
            .map(|b| b.lhs_cols.iter().copied().chain([b.rhs_col]).collect())
            .collect();
        let mut needed: Vec<usize> = cols.iter().flatten().copied().collect();
        needed.sort_unstable();
        needed.dedup();

        // Scatter: one export per shard; real fan-out only when there is
        // more than one shard (the scope spawn is pure overhead otherwise).
        let t0 = Instant::now();
        let exports: Vec<ShardExport> = if self.shards.len() == 1 {
            vec![self.shards[0].export(&bound, &cols, &needed)]
        } else {
            let (bound, cols, needed) = (&bound, &cols, &needed);
            crossbeam::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|sh| s.spawn(move |_| sh.export(bound, cols, needed)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard export does not panic"))
                    .collect::<Vec<ShardExport>>()
            })
            .expect("shard workers do not panic")
        };
        let scatter_ns = t0.elapsed().as_nanos() as u64;

        // Gather: merge per CFD across shards.
        let t1 = Instant::now();
        let mut report = ViolationReport::default();
        for idx in 0..bound.len() {
            merge_cfd_partials(
                idx,
                exports.iter().map(|e| e.partials[idx].as_ref()),
                &mut report,
            );
        }
        self.stats = DetectStats {
            scatter_ns,
            merge_ns: t1.elapsed().as_nanos() as u64,
            exported_groups: exports
                .iter()
                .flat_map(|e| &e.partials)
                .map(|p| p.n_groups() as u64)
                .sum(),
            exported_members: exports
                .iter()
                .flat_map(|e| &e.partials)
                .map(|p| p.n_members() as u64)
                .sum(),
            partials_computed: exports.iter().map(|e| e.computed).sum(),
            partials_reused: exports.iter().map(|e| e.reused).sum(),
        };
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{HashRouter, RoundRobinRouter};
    use colstore::detect_columnar;
    use datagen::dirty_customers;

    fn single_node(rows: usize, noise: f64, seed: u64) -> (Table, Vec<Cfd>) {
        let d = dirty_customers(rows, noise, seed);
        (d.db.table("customer").unwrap().clone(), d.cfds)
    }

    fn assert_cluster_matches(table: &Table, cfds: &[Cfd], mut c: ShardedQualityServer) {
        c.register_cfds(cfds.to_vec()).unwrap();
        let sharded = c.detect().unwrap().normalized();
        let single = detect_columnar(table, cfds).unwrap().normalized();
        assert_eq!(sharded, single);
    }

    #[test]
    fn partitioned_detection_matches_single_node() {
        let (t, cfds) = single_node(400, 0.06, 41);
        for n in [1usize, 2, 4, 7] {
            let c = ShardedQualityServer::partition(&t, n, Box::new(RoundRobinRouter::default()))
                .unwrap();
            assert_eq!(c.len(), t.len());
            assert_cluster_matches(&t, &cfds, c);
        }
    }

    #[test]
    fn hash_router_matches_too() {
        let (t, cfds) = single_node(300, 0.08, 42);
        // Key on CNT (column 1): variable-CFD groups over [CNT, ZIP] split
        // less, constant rules unaffected.
        let c = ShardedQualityServer::partition(&t, 4, Box::new(HashRouter::new(vec![1]))).unwrap();
        assert_cluster_matches(&t, &cfds, c);
    }

    #[test]
    fn routed_updates_keep_cluster_exact() {
        let (mut t, cfds) = single_node(200, 0.05, 43);
        let mut c =
            ShardedQualityServer::partition(&t, 3, Box::new(RoundRobinRouter::default())).unwrap();
        c.register_cfds(cfds.clone()).unwrap();
        // Warm the shard snapshots, then stream identical mutations into
        // both the cluster and the reference table.
        c.detect().unwrap();
        let encodes = c.snapshot_encodes();
        assert_eq!(encodes, 3, "one encode per shard");
        let ids = t.row_ids();
        for (i, &id) in ids.iter().take(12).enumerate() {
            let v = Value::str(format!("CITY{i}"));
            t.update_cell(id, 2, v.clone()).unwrap();
            c.update_cell(id, 2, v).unwrap();
        }
        let victim = ids[20];
        t.delete(victim).unwrap();
        c.delete(victim).unwrap();
        let donor: Vec<Value> = t.iter().next().unwrap().1.to_vec();
        let id_t = t.insert(donor.clone()).unwrap();
        let id_c = c.insert(donor).unwrap();
        assert_eq!(id_t, id_c, "global id allocation mirrors single-node");
        let sharded = c.detect().unwrap().normalized();
        let single = detect_columnar(&t, &cfds).unwrap().normalized();
        assert_eq!(sharded, single);
        assert_eq!(
            c.snapshot_encodes(),
            encodes,
            "routed mutations patch shard snapshots, never re-encode"
        );
    }

    #[test]
    fn unchanged_shards_reuse_their_partials() {
        let (t, cfds) = single_node(150, 0.05, 44);
        let mut c =
            ShardedQualityServer::partition(&t, 2, Box::new(RoundRobinRouter::default())).unwrap();
        c.register_cfds(cfds.clone()).unwrap();
        c.detect().unwrap();
        let first = c.last_detect_stats();
        assert_eq!(first.partials_computed, 2 * cfds.len() as u64);
        c.detect().unwrap();
        let second = c.last_detect_stats();
        assert_eq!(second.partials_computed, 0, "nothing changed");
        assert_eq!(second.partials_reused, 2 * cfds.len() as u64);
        // Touch one cell on one shard: only that shard's affected CFDs
        // recompute.
        let id = c.shard_table(0).iter().next().unwrap().0;
        let old = c.shard_table(0).get(id).unwrap()[2].clone();
        c.update_cell(id, 2, Value::str("ELSEWHERE")).unwrap();
        c.update_cell(id, 2, old).unwrap();
        c.detect().unwrap();
        let third = c.last_detect_stats();
        assert!(
            third.partials_reused >= cfds.len() as u64,
            "shard 1 untouched"
        );
        assert!(third.partials_computed < 2 * cfds.len() as u64);
    }

    #[test]
    fn unknown_row_errors() {
        let (t, _) = single_node(50, 0.0, 45);
        let mut c =
            ShardedQualityServer::partition(&t, 2, Box::new(RoundRobinRouter::default())).unwrap();
        assert!(c.delete(RowId(9_999)).is_err());
        assert!(c.update_cell(RowId(9_999), 0, Value::Null).is_err());
    }

    #[test]
    fn empty_cluster_detects_nothing() {
        let (t, cfds) = single_node(10, 0.0, 46);
        let mut c = ShardedQualityServer::new(
            "customer",
            t.schema().clone(),
            4,
            Box::new(HashRouter::default()),
        );
        c.register_cfds(cfds).unwrap();
        assert!(c.is_empty());
        assert!(c.detect().unwrap().is_empty());
    }
}
