//! Sharded repair: cross-shard equivalence classes over the detection
//! exchange, making the cluster capability-complete.
//!
//! A shard-local repair is semantically wrong for the same reason
//! shard-local detection is: a variable CFD's group can span shards, look
//! clean on every one of them, and only conflict merged (the HOSP demo's
//! cross-shard `XR-9` conflict). Worse, repair must judge candidate fixes
//! *globally* — the cost-ordered target value of an equivalence class
//! depends on every member, wherever it lives. So the cluster repairs at
//! the coordinator, reusing the two machines the workspace already has:
//!
//! 1. **Detection per round is the scatter/gather exchange.** Each round
//!    of the repair loop calls [`ShardedQualityServer::detect`]: shards
//!    export their per-group partial states (memoized against column
//!    epochs, so later rounds only re-export what the previous round's
//!    edits touched), and the coordinator merges them into a report that
//!    is `normalized()`-equal to single-node detection.
//! 2. **Resolution is the shared plan/resolve core** of
//!    [`repair::rounds`]: equivalence classes ([`repair::EqClasses`]) are
//!    built over the merged report's `(row id, value)` members — rows keep
//!    their **global** ids on every shard, so class membership needs no
//!    translation — and target values are picked with the shared cost
//!    model. The classes are *global by construction*: two cells merged
//!    through a cross-shard group land in one class exactly as they would
//!    single-node.
//!
//! The resulting [`CellChange`]s route back to their owning shards
//! immediately (point writes keep the loop's reads coherent), while the
//! snapshot bookkeeping is **batched per shard per round**: each shard
//! accumulates its round's cell deltas and replays them in one
//! [`SnapshotCache::note_set_cells`] call before the next detect — every
//! shard's cached snapshot stays patched in lock-step, and no round
//! re-encodes. Active-domain statistics are merged across the shards'
//! snapshot dictionaries ([`colstore::Column::value_counts`]), decoding
//! each distinct value once per shard.
//!
//! Because the per-round reports are `normalized()`-equal to single-node
//! detection and the resolve core is shared, the cluster's repair output —
//! the change list, its order, the costs, the repaired relation — is
//! *identical* to [`repair::batch_repair`] over the merged table, for
//! every router and shard count (`tests/sharded_repair.rs` pins this by
//! property).
//!
//! [`CellChange`]: repair::CellChange
//! [`SnapshotCache::note_set_cells`]: colstore::SnapshotCache::note_set_cells

use cfd::{BoundCfd, Cfd, CfdResult};
use detect::fxhash::FxHashMap;
use detect::ViolationReport;
use minidb::{RowId, Schema, Value};
use repair::{repair_rounds, ColumnCounts, RepairConfig, RepairResult, RepairStore};

use crate::server::{db_err, ShardedQualityServer};

impl ShardedQualityServer {
    /// Cross-shard BatchRepair under the default [`RepairConfig`] — see
    /// the module docs. The repaired cluster ends `normalized()`-equal to
    /// a single-node [`repair::batch_repair`] of the merged relation.
    pub fn repair(&mut self) -> CfdResult<RepairResult> {
        self.repair_with_config(&RepairConfig::default())
    }

    /// [`ShardedQualityServer::repair`] with an explicit configuration.
    pub fn repair_with_config(&mut self, cfg: &RepairConfig) -> CfdResult<RepairResult> {
        let cfds = self.cfds.clone();
        let bound: Vec<BoundCfd> = cfds
            .iter()
            .map(|c| c.bind(&self.schema))
            .collect::<CfdResult<_>>()?;
        // The same projection the scatter export builds per shard — so the
        // store's dictionary reads are cache hits on the snapshots the
        // round's detect just used, never fresh encodes.
        let mut needed: Vec<usize> = bound
            .iter()
            .flat_map(|b| b.lhs_cols.iter().copied().chain([b.rhs_col]))
            .collect();
        needed.sort_unstable();
        needed.dedup();

        let pending = vec![Vec::new(); self.shards.len()];
        let mut store = ClusterStore {
            cluster: self,
            needed,
            pending,
        };
        let result = repair_rounds(&mut store, &cfds, cfg)?;
        store.flush(); // the final residual detect already flushed; defensive
                       // Parity with the single-node server: repair invalidates the
                       // cached report, the next detect/audit recomputes (riding the
                       // still-fresh partial memos).
        self.last_report = None;
        Ok(result)
    }
}

/// The cluster's [`RepairStore`]: point reads and writes route to the
/// owning shard (global row ids make this one dense-map lookup), detection
/// is the scatter/gather exchange, and each shard's snapshot bookkeeping
/// is replayed as one per-round batch.
struct ClusterStore<'a> {
    cluster: &'a mut ShardedQualityServer,
    /// Columns of the registered CFD set — the shard snapshots'
    /// projection.
    needed: Vec<usize>,
    /// Per-shard cell edits applied to the shard *tables* but not yet
    /// replayed into the shard snapshots — the round's per-shard mutation
    /// batch, flushed before anything reads derived state.
    pending: Vec<Vec<(RowId, usize)>>,
}

impl ClusterStore<'_> {
    /// Replay every shard's accumulated cell batch into its snapshot
    /// cache: one epoch-gap check and one patch pass per touched shard
    /// ([`colstore::SnapshotCache::note_set_cells`]), instead of per-cell
    /// bookkeeping — the repair-side analogue of `apply_batch`'s
    /// `note_batch`.
    fn flush(&mut self) {
        for (sid, cells) in self.pending.iter_mut().enumerate() {
            if cells.is_empty() {
                continue;
            }
            let shard = &mut self.cluster.shards[sid];
            shard.cache.note_set_cells(&shard.table, cells);
            cells.clear();
        }
    }
}

impl RepairStore for ClusterStore<'_> {
    fn schema(&self) -> CfdResult<Schema> {
        Ok(self.cluster.schema.clone())
    }

    fn len(&self) -> usize {
        self.cluster.len()
    }

    fn row(&self, id: RowId) -> Option<Vec<Value>> {
        let sid = self.cluster.shard_of(id)?;
        self.cluster.shards[sid]
            .table
            .get(id)
            .ok()
            .map(<[Value]>::to_vec)
    }

    fn set_cell(&mut self, id: RowId, col: usize, value: Value) -> CfdResult<Value> {
        let sid = self.cluster.owning_shard(id)?;
        let shard = &mut self.cluster.shards[sid];
        let old = shard.table.update_cell(id, col, value).map_err(db_err)?;
        self.pending[sid].push((id, col));
        self.cluster.last_report = None;
        Ok(old)
    }

    fn detect(&mut self, _cfds: &[Cfd]) -> CfdResult<ViolationReport> {
        // The loop always detects the registered set (`repair_with_config`
        // passes it through); sync the shard snapshots, then scatter.
        self.flush();
        self.cluster.detect()
    }

    fn value_counts(&mut self, cols: &[usize]) -> CfdResult<Vec<(usize, ColumnCounts)>> {
        self.flush();
        // Merge per-column tallies across shards, decoding each distinct
        // value once through its shard's snapshot dictionary. Counts are
        // additive, so the merged pool equals the single-node pool over
        // the union of the rows.
        let mut merged: Vec<(ColumnCounts, FxHashMap<Value, usize>)> =
            cols.iter().map(|_| Default::default()).collect();
        for shard in &mut self.cluster.shards {
            let snap = shard.cache.snapshot_projected(&shard.table, &self.needed);
            for (&c, (vals, index)) in cols.iter().zip(merged.iter_mut()) {
                for (v, n) in snap.column(c).value_counts() {
                    match index.get(&v) {
                        Some(&i) => vals[i].1 += n,
                        None => {
                            index.insert(v.clone(), vals.len());
                            vals.push((v, n));
                        }
                    }
                }
            }
        }
        Ok(cols
            .iter()
            .zip(merged)
            .map(|(&c, (vals, _))| (c, vals))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RoundRobinRouter;
    use datagen::dirty_customers;
    use repair::batch_repair;

    #[test]
    fn sharded_repair_converges_and_matches_single_node() {
        let d = dirty_customers(300, 0.05, 91);
        let table = d.db.table("customer").unwrap();
        let mut cluster =
            ShardedQualityServer::partition(table, 3, Box::new(RoundRobinRouter::default()))
                .unwrap();
        cluster.register_cfds(d.cfds.clone()).unwrap();
        let sharded = cluster.repair().unwrap();
        assert!(sharded.residual.is_empty());
        assert!(!sharded.changes.is_empty());
        assert!(cluster.detect().unwrap().is_empty());

        let mut db = d.db.clone();
        let single = batch_repair(&mut db, "customer", &d.cfds, &RepairConfig::default()).unwrap();
        assert_eq!(sharded.changes, single.changes, "identical change lists");
        assert_eq!(sharded.iterations, single.iterations);
    }

    #[test]
    fn repair_rounds_patch_shard_snapshots_without_reencodes() {
        let d = dirty_customers(400, 0.05, 92);
        let table = d.db.table("customer").unwrap();
        let mut cluster =
            ShardedQualityServer::partition(table, 4, Box::new(RoundRobinRouter::default()))
                .unwrap();
        cluster.register_cfds(d.cfds.clone()).unwrap();
        cluster.detect().unwrap();
        let encodes = cluster.snapshot_encodes();
        assert_eq!(encodes, 4, "one encode per shard");
        let r = cluster.repair().unwrap();
        assert!(r.residual.is_empty());
        assert_eq!(
            cluster.snapshot_encodes(),
            encodes,
            "repair rounds replay per-shard cell batches, never re-encode"
        );
        assert!(cluster.detect().unwrap().is_empty());
        assert_eq!(cluster.snapshot_encodes(), encodes);
    }

    #[test]
    fn trait_repair_reports_the_summary() {
        use api::QualityBackend;
        let d = dirty_customers(150, 0.05, 93);
        let table = d.db.table("customer").unwrap();
        let mut cluster =
            ShardedQualityServer::partition(table, 2, Box::new(RoundRobinRouter::default()))
                .unwrap();
        cluster.register_cfds(d.cfds.clone()).unwrap();
        assert!(cluster.capabilities().repair);
        let summary = QualityBackend::repair(&mut cluster).unwrap();
        assert_eq!(summary.residual, 0);
        assert!(summary.changes > 0);
        assert!(
            QualityBackend::last_report(&cluster).is_none(),
            "repair invalidates the cached report, like the single-node server"
        );
    }
}
