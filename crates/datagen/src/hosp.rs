//! A second workload: a HOSP-style provider relation.
//!
//! The US "Hospital Compare" data is the other standard benchmark in the
//! CFD-repair literature ([8] and follow-ups evaluate on it). We generate
//! a synthetic equivalent with the same dependency structure:
//!
//! ```text
//! hosp(PROVIDER, HOSPITAL, CITY, STATE, ZIP, PHONE, MEASURE, CONDITION)
//! ```
//!
//! * `PROVIDER` is a key for the hospital attributes;
//! * `ZIP → CITY, STATE` (geography);
//! * `MEASURE → CONDITION` (the measure-code dictionary);
//! * plus constant rules binding a few concrete codes, mirroring how
//!   domain dictionaries show up as constant CFDs.

use minidb::{Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cfd::parse::parse_cfds;
use cfd::Cfd;

/// Attributes of the HOSP-style relation.
pub const HOSP_ATTRS: [&str; 8] = [
    "PROVIDER",
    "HOSPITAL",
    "CITY",
    "STATE",
    "ZIP",
    "PHONE",
    "MEASURE",
    "CONDITION",
];

const STATES: [(&str, &[&str]); 4] = [
    ("AL", &["BIRMINGHAM", "DOTHAN", "MOBILE"]),
    ("AK", &["ANCHORAGE", "JUNEAU"]),
    ("AZ", &["PHOENIX", "TUCSON", "MESA"]),
    ("AR", &["LITTLE ROCK", "FAYETTEVILLE"]),
];

const MEASURES: [(&str, &str); 6] = [
    ("AMI-1", "Heart Attack"),
    ("AMI-2", "Heart Attack"),
    ("HF-1", "Heart Failure"),
    ("HF-2", "Heart Failure"),
    ("PN-1", "Pneumonia"),
    ("SCIP-1", "Surgical Infection Prevention"),
];

/// The CFD set the literature uses over HOSP-like data, in our notation.
pub const HOSP_CFDS: &str = "\
-- provider is a key for hospital identity
hosp: [PROVIDER] -> [HOSPITAL]
hosp: [PROVIDER] -> [PHONE]
hosp: [PROVIDER] -> [ZIP]
-- geography
hosp: [ZIP] -> [CITY]
hosp: [ZIP] -> [STATE]
-- measure-code dictionary
hosp: [MEASURE] -> [CONDITION]
-- concrete dictionary entries as constant CFDs
hosp: [MEASURE='AMI-1'] -> [CONDITION='Heart Attack']
hosp: [MEASURE='HF-1'] -> [CONDITION='Heart Failure']
hosp: [MEASURE='PN-1'] -> [CONDITION='Pneumonia']
";

/// The HOSP CFD set, parsed (9 CFDs in normal form).
pub fn hosp_cfds() -> Vec<Cfd> {
    parse_cfds(HOSP_CFDS).expect("HOSP CFDs parse")
}

/// The HOSP schema (all TEXT).
pub fn hosp_schema() -> Schema {
    Schema::of_strings(&HOSP_ATTRS)
}

/// Configuration for the HOSP generator.
#[derive(Debug, Clone)]
pub struct HospConfig {
    /// Number of rows (provider×measure observations).
    pub rows: usize,
    /// Number of distinct providers (controls duplication: each provider
    /// appears in rows/providers observations on average).
    pub providers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HospConfig {
    fn default() -> HospConfig {
        HospConfig {
            rows: 1000,
            providers: 100,
            seed: 0x405,
        }
    }
}

/// Generate a clean HOSP-style table satisfying [`HOSP_CFDS`] by
/// construction. Rows are (provider, measure) observations, so providers
/// repeat across rows — the duplication the variable CFDs need to bite.
pub fn generate_hosp(cfg: &HospConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Table::new("hosp", hosp_schema());
    // Fixed provider master data (functions of the provider id).
    let providers: Vec<(String, String, usize, usize, String, String)> = (0..cfg.providers)
        .map(|p| {
            let (_state, cities) = STATES[p % STATES.len()];
            let city_idx = rng.gen_range(0..cities.len());
            let zip = format!("{:05}", 10000 + (p % STATES.len()) * 1000 + city_idx * 37);
            let phone = format!("{:03}-{:04}", 200 + p % 700, 1000 + p * 7 % 9000);
            (
                format!("P{p:05}"),
                format!("{} GENERAL HOSPITAL {p}", cities[city_idx]),
                p % STATES.len(),
                city_idx,
                zip,
                phone,
            )
        })
        .collect();
    for _ in 0..cfg.rows {
        let p = rng.gen_range(0..providers.len());
        let (provider, hospital, state_idx, city_idx, zip, phone) = &providers[p];
        let (state, cities) = STATES[*state_idx];
        let (measure, condition) = MEASURES[rng.gen_range(0..MEASURES.len())];
        t.insert(vec![
            Value::str(provider),
            Value::str(hospital),
            Value::str(cities[*city_idx]),
            Value::str(state),
            Value::str(zip),
            Value::str(phone),
            Value::str(measure),
            Value::str(condition),
        ])
        .expect("generated row fits schema");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn clean_hosp_satisfies_its_cfds() {
        let t = generate_hosp(&HospConfig::default());
        let cfds = hosp_cfds();
        for c in &cfds {
            let b = c.bind(t.schema()).unwrap();
            // constant rules
            if c.rhs_pat.constant().is_some() {
                for (_, row) in t.iter() {
                    if b.lhs_matches(row) {
                        assert!(b.rhs_matches(row), "{c} broken");
                    }
                }
            } else {
                // variable rules: group agreement
                let mut map: HashMap<Vec<minidb::Value>, minidb::Value> = HashMap::new();
                for (_, row) in t.iter() {
                    if !b.lhs_matches(row) {
                        continue;
                    }
                    let key = b.lhs_key(row);
                    let v = row[b.rhs_col].clone();
                    if let Some(prev) = map.insert(key, v.clone()) {
                        assert!(prev.strong_eq(&v), "{c} broken");
                    }
                }
            }
        }
    }

    #[test]
    fn providers_repeat_across_rows() {
        let t = generate_hosp(&HospConfig {
            rows: 500,
            providers: 50,
            seed: 1,
        });
        let mut counts: HashMap<String, usize> = HashMap::new();
        for (_, row) in t.iter() {
            *counts.entry(row[0].to_string()).or_default() += 1;
        }
        assert!(counts.values().any(|&n| n > 1), "need duplicate providers");
        assert!(counts.len() <= 50);
    }

    #[test]
    fn generator_is_deterministic() {
        let cfg = HospConfig::default();
        let a: Vec<_> = generate_hosp(&cfg)
            .iter()
            .map(|(_, r)| r.to_vec())
            .collect();
        let b: Vec<_> = generate_hosp(&cfg)
            .iter()
            .map(|(_, r)| r.to_vec())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn measure_dictionary_is_consistent() {
        // The MEASURES table itself must satisfy MEASURE → CONDITION.
        let mut seen: HashMap<&str, &str> = HashMap::new();
        for (m, c) in MEASURES {
            if let Some(prev) = seen.insert(m, c) {
                assert_eq!(prev, c);
            }
        }
    }
}
