//! Parameterized relation generator with planted dependencies, used by the
//! discovery experiments (E7): generate data that *exactly* satisfies a set
//! of planted FDs and constant CFDs, then check the miners recover them.

use minidb::{Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cfd::{Cfd, Fd, Pattern};

/// Configuration for the generic generator.
#[derive(Debug, Clone)]
pub struct GenericConfig {
    /// Number of rows.
    pub rows: usize,
    /// Number of attributes (named `A0`, `A1`, …).
    pub attrs: usize,
    /// Domain size of each *independent* attribute.
    pub domain: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenericConfig {
    fn default() -> GenericConfig {
        GenericConfig {
            rows: 1000,
            attrs: 6,
            domain: 20,
            seed: 1,
        }
    }
}

/// A generated relation plus the dependencies it satisfies by construction.
#[derive(Debug, Clone)]
pub struct PlantedRelation {
    /// The data.
    pub table: Table,
    /// Planted FDs (hold exactly).
    pub fds: Vec<Fd>,
    /// Planted constant CFDs (hold exactly, with support ≥ 1).
    pub constant_cfds: Vec<Cfd>,
}

/// Attribute name for index `i`.
pub fn attr_name(i: usize) -> String {
    format!("A{i}")
}

/// Generate a relation where:
/// * `A1 = f(A0)` and `A2 = g(A0)` (two planted FDs `A0 → A1`, `A0 → A2`),
/// * whenever `A0 = "k0"`, `A3 = "c3"` (a planted constant CFD),
/// * remaining attributes are independent uniform draws.
///
/// Requires `attrs >= 4`.
pub fn generate_planted(cfg: &GenericConfig) -> PlantedRelation {
    assert!(cfg.attrs >= 4, "generator needs at least 4 attributes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let names: Vec<String> = (0..cfg.attrs).map(attr_name).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let schema = Schema::of_strings(&name_refs);
    let mut t = Table::new("planted", schema);

    // Functions f, g over the A0 domain, fixed by the seed.
    let f: Vec<usize> = (0..cfg.domain)
        .map(|_| rng.gen_range(0..cfg.domain))
        .collect();
    let g: Vec<usize> = (0..cfg.domain)
        .map(|_| rng.gen_range(0..cfg.domain))
        .collect();

    for _ in 0..cfg.rows {
        let a0 = rng.gen_range(0..cfg.domain);
        let mut row: Vec<Value> = Vec::with_capacity(cfg.attrs);
        row.push(Value::str(format!("k{a0}")));
        row.push(Value::str(format!("v{}", f[a0])));
        row.push(Value::str(format!("w{}", g[a0])));
        // A3: constant c3 when A0 = k0, otherwise anything ≠ c3.
        if a0 == 0 {
            row.push(Value::str("c3"));
        } else {
            row.push(Value::str(format!("d{}", rng.gen_range(0..cfg.domain))));
        }
        for _ in 4..cfg.attrs {
            row.push(Value::str(format!("u{}", rng.gen_range(0..cfg.domain))));
        }
        t.insert(row).expect("generated row fits schema");
    }

    let fds = vec![
        Fd {
            lhs: vec![attr_name(0)],
            rhs: attr_name(1),
        },
        Fd {
            lhs: vec![attr_name(0)],
            rhs: attr_name(2),
        },
    ];
    let constant_cfds = vec![Cfd::new(
        "planted",
        vec![(attr_name(0), Pattern::s("k0"))],
        attr_name(3),
        Pattern::s("c3"),
    )
    .expect("well-formed planted CFD")];
    PlantedRelation {
        table: t,
        fds,
        constant_cfds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn planted_fds_hold() {
        let p = generate_planted(&GenericConfig::default());
        for fd in &p.fds {
            let lhs_idx: Vec<usize> = fd
                .lhs
                .iter()
                .map(|a| p.table.schema().require(a).unwrap())
                .collect();
            let rhs_idx = p.table.schema().require(&fd.rhs).unwrap();
            let mut map: HashMap<Vec<String>, String> = HashMap::new();
            for (_, r) in p.table.iter() {
                let key: Vec<String> = lhs_idx.iter().map(|&c| r[c].to_string()).collect();
                let val = r[rhs_idx].to_string();
                if let Some(prev) = map.insert(key, val.clone()) {
                    assert_eq!(prev, val, "planted FD {fd} violated");
                }
            }
        }
    }

    #[test]
    fn planted_constant_cfd_holds_with_support() {
        let p = generate_planted(&GenericConfig::default());
        let c = &p.constant_cfds[0];
        let b = c.bind(p.table.schema()).unwrap();
        let mut support = 0usize;
        for (_, r) in p.table.iter() {
            if b.lhs_matches(r) {
                support += 1;
                assert!(b.rhs_matches(r));
            }
        }
        assert!(support > 0, "planted CFD needs support in the data");
    }

    #[test]
    fn a3_is_not_constant_globally() {
        // Guards against degenerate generation where A3 would be constant
        // (which would make the planted CFD trivial).
        let p = generate_planted(&GenericConfig::default());
        let idx = p.table.schema().require("A3").unwrap();
        let mut values: Vec<String> = p.table.iter().map(|(_, r)| r[idx].to_string()).collect();
        values.sort();
        values.dedup();
        assert!(values.len() > 1);
    }
}
