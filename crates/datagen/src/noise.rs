//! Controlled noise injection with a ground-truth mask.
//!
//! The repair-quality experiments ([8]'s methodology) need to know exactly
//! which cells were dirtied and what their original values were; the
//! injector records a [`CellNoise`] entry per corrupted cell.

use minidb::{RowId, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a single cell was corrupted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NoiseKind {
    /// One character edited / inserted / deleted (a typo).
    Typo,
    /// Replaced by a value drawn from another row of the same column
    /// (an entity mix-up: the kind CFDs catch).
    Swap,
}

/// Ground-truth record of one injected error.
#[derive(Debug, Clone, PartialEq)]
pub struct CellNoise {
    /// Row that was dirtied.
    pub row: RowId,
    /// Column index.
    pub col: usize,
    /// Original (clean) value.
    pub original: Value,
    /// Injected dirty value.
    pub dirty: Value,
    /// Which corruption was applied.
    pub kind: NoiseKind,
}

/// Noise injection parameters.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Fraction of **cells** to corrupt, over `rows × |columns|`.
    pub rate: f64,
    /// Probability that a corruption is a [`NoiseKind::Typo`] (the rest are
    /// swaps). Swaps are the errors CFD detection is designed to catch;
    /// typos additionally exercise the similarity term of the repair cost
    /// model.
    pub typo_fraction: f64,
    /// Columns eligible for corruption (indices into the schema).
    pub columns: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl NoiseConfig {
    /// Corrupt `rate` of cells across `columns`, all swaps.
    pub fn swaps(rate: f64, columns: Vec<usize>, seed: u64) -> NoiseConfig {
        NoiseConfig {
            rate,
            typo_fraction: 0.0,
            columns,
            seed,
        }
    }
}

/// Inject noise into `table` in place; returns the ground-truth mask in
/// injection order. Each targeted cell is corrupted at most once.
pub fn inject_noise(table: &mut Table, cfg: &NoiseConfig) -> Vec<CellNoise> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let ids: Vec<RowId> = table.iter().map(|(id, _)| id).collect();
    if ids.is_empty() || cfg.columns.is_empty() {
        return Vec::new();
    }
    let total_cells = ids.len() * cfg.columns.len();
    let n_errors = ((total_cells as f64) * cfg.rate).round() as usize;
    // Pre-collect per-column value pools for swaps.
    let pools: Vec<Vec<Value>> = cfg
        .columns
        .iter()
        .map(|&c| {
            let mut vs: Vec<Value> = table.iter().map(|(_, r)| r[c].clone()).collect();
            vs.dedup();
            vs
        })
        .collect();
    let mut mask: Vec<CellNoise> = Vec::with_capacity(n_errors);
    let mut touched: std::collections::HashSet<(RowId, usize)> = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while mask.len() < n_errors && attempts < n_errors * 20 {
        attempts += 1;
        let row = ids[rng.gen_range(0..ids.len())];
        let col_pos = rng.gen_range(0..cfg.columns.len());
        let col = cfg.columns[col_pos];
        if !touched.insert((row, col)) {
            continue;
        }
        let original = table.get(row).expect("live row")[col].clone();
        let kind = if rng.gen_bool(cfg.typo_fraction.clamp(0.0, 1.0)) {
            NoiseKind::Typo
        } else {
            NoiseKind::Swap
        };
        let dirty = match kind {
            NoiseKind::Typo => typo(&original, &mut rng),
            NoiseKind::Swap => {
                // Draw a different value from the column pool.
                let pool = &pools[col_pos];
                let mut v = pool[rng.gen_range(0..pool.len())].clone();
                let mut tries = 0;
                while v.strong_eq(&original) && tries < 16 {
                    v = pool[rng.gen_range(0..pool.len())].clone();
                    tries += 1;
                }
                if v.strong_eq(&original) {
                    typo(&original, &mut rng) // degenerate pool: fall back
                } else {
                    v
                }
            }
        };
        if dirty.strong_eq(&original) {
            touched.remove(&(row, col));
            continue;
        }
        table
            .update_cell(row, col, dirty.clone())
            .expect("same-type update");
        mask.push(CellNoise {
            row,
            col,
            original,
            dirty,
            kind,
        });
    }
    mask
}

/// Apply a one-character typo to a value (strings only; other types get a
/// numeric nudge).
fn typo(v: &Value, rng: &mut StdRng) -> Value {
    match v {
        Value::Str(s) if !s.is_empty() => {
            let chars: Vec<char> = s.chars().collect();
            let pos = rng.gen_range(0..chars.len());
            let mut out: String = String::with_capacity(s.len() + 1);
            let replacement = (b'a' + rng.gen_range(0..26u8)) as char;
            match rng.gen_range(0..3u8) {
                0 => {
                    // substitute
                    for (i, c) in chars.iter().enumerate() {
                        out.push(if i == pos { replacement } else { *c });
                    }
                }
                1 => {
                    // insert
                    for (i, c) in chars.iter().enumerate() {
                        if i == pos {
                            out.push(replacement);
                        }
                        out.push(*c);
                    }
                }
                _ => {
                    // delete (keep at least one char)
                    if chars.len() == 1 {
                        out.push(replacement);
                    } else {
                        for (i, c) in chars.iter().enumerate() {
                            if i != pos {
                                out.push(*c);
                            }
                        }
                    }
                }
            }
            Value::str(out)
        }
        Value::Str(_) => Value::str("x"),
        Value::Int(i) => Value::Int(i + 1),
        Value::Float(f) => Value::Float(f + 1.0),
        Value::Bool(b) => Value::Bool(!b),
        Value::Null => Value::str("x"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::customer::{generate_customers, CustomerConfig};

    fn table() -> Table {
        generate_customers(&CustomerConfig {
            rows: 200,
            ..CustomerConfig::default()
        })
    }

    #[test]
    fn mask_matches_table_contents() {
        let mut t = table();
        let mask = inject_noise(
            &mut t,
            &NoiseConfig {
                rate: 0.05,
                typo_fraction: 0.3,
                columns: vec![1, 2, 3, 4, 5],
                seed: 42,
            },
        );
        assert!(!mask.is_empty());
        for m in &mask {
            let cell = &t.get(m.row).unwrap()[m.col];
            assert!(cell.strong_eq(&m.dirty));
            assert!(!cell.strong_eq(&m.original));
        }
    }

    #[test]
    fn rate_controls_error_count() {
        let mut t = table();
        let cols = vec![1, 2, 3, 4, 5];
        let mask = inject_noise(&mut t, &NoiseConfig::swaps(0.02, cols.clone(), 1));
        let expected = (200.0 * cols.len() as f64 * 0.02).round() as usize;
        assert_eq!(mask.len(), expected);
    }

    #[test]
    fn injection_is_deterministic() {
        let mut t1 = table();
        let mut t2 = table();
        let cfg = NoiseConfig {
            rate: 0.03,
            typo_fraction: 0.5,
            columns: vec![2, 4],
            seed: 99,
        };
        let m1 = inject_noise(&mut t1, &cfg);
        let m2 = inject_noise(&mut t2, &cfg);
        assert_eq!(m1, m2);
    }

    #[test]
    fn zero_rate_leaves_table_untouched() {
        let mut t = table();
        let before: Vec<_> = t.iter().map(|(_, r)| r.to_vec()).collect();
        let mask = inject_noise(&mut t, &NoiseConfig::swaps(0.0, vec![1], 5));
        assert!(mask.is_empty());
        let after: Vec<_> = t.iter().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn each_cell_corrupted_at_most_once() {
        let mut t = table();
        let mask = inject_noise(&mut t, &NoiseConfig::swaps(0.2, vec![1, 2], 3));
        let mut seen = std::collections::HashSet::new();
        for m in &mask {
            assert!(seen.insert((m.row, m.col)), "cell corrupted twice");
        }
    }
}
