//! Generator for the paper's running example: the `customer` relation
//! `customer(NAME, CNT, CITY, ZIP, STR, CC, AC)` (§3 of the demo paper),
//! produced *consistent* with the canonical CFD set so that every violation
//! found later is one we injected.

use minidb::{Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cfd::parse::parse_cfds;
use cfd::Cfd;

/// The seven attributes of the paper's customer relation.
pub const CUSTOMER_ATTRS: [&str; 7] = ["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"];

/// Countries with their country codes, cities and zip/area-code spaces.
struct Country {
    name: &'static str,
    cc: &'static str,
    cities: &'static [&'static str],
    zip_prefix: &'static str,
}

const COUNTRIES: [Country; 3] = [
    Country {
        name: "UK",
        cc: "44",
        cities: &["EDI", "LDN", "GLA", "MAN", "LDS"],
        zip_prefix: "EH",
    },
    Country {
        name: "US",
        cc: "01",
        cities: &["NYC", "CHI", "PHI", "SFO", "BOS"],
        zip_prefix: "0",
    },
    Country {
        name: "NL",
        cc: "31",
        cities: &["AMS", "RTM", "UTR", "EIN", "GRO"],
        zip_prefix: "1",
    },
];

const STREETS: [&str; 12] = [
    "High St",
    "Mayfield Rd",
    "Crichton St",
    "Main St",
    "Oak Ave",
    "Station Rd",
    "Church Ln",
    "Park View",
    "Mill Road",
    "Queen St",
    "King St",
    "Bridge St",
];

const FIRST_NAMES: [&str; 16] = [
    "mike", "rick", "joe", "mary", "anna", "liam", "emma", "noah", "ava", "finn", "zoe", "max",
    "ida", "sam", "lea", "ben",
];

/// The paper's CFDs (φ1–φ4) plus the symmetric country-code rules for the
/// other generated countries, in the textual notation.
pub const CANONICAL_CFDS: &str = "\
-- f1 / φ1: country + zip determine city
customer: [CNT, ZIP] -> [CITY]
-- φ2: in the UK, zip determines street
customer: [CNT='UK', ZIP=_] -> [STR=_]
-- f3 / φ3: country code determines country
customer: [CC] -> [CNT]
-- φ4 and friends: concrete code → country bindings
customer: [CC='44'] -> [CNT='UK']
customer: [CC='01'] -> [CNT='US']
customer: [CC='31'] -> [CNT='NL']
";

/// The canonical CFD set, parsed (8 CFDs in normal form).
pub fn canonical_cfds() -> Vec<Cfd> {
    parse_cfds(CANONICAL_CFDS).expect("canonical CFDs parse")
}

/// The customer schema (all TEXT, matching the paper's example).
pub fn customer_schema() -> Schema {
    Schema::of_strings(&CUSTOMER_ATTRS)
}

/// Configuration for the customer generator.
#[derive(Debug, Clone)]
pub struct CustomerConfig {
    /// Number of tuples.
    pub rows: usize,
    /// Distinct zip codes generated per city (controls group sizes for
    /// multi-tuple violation detection: rows/zips ≈ tuples per group).
    pub zips_per_city: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Default for CustomerConfig {
    fn default() -> CustomerConfig {
        CustomerConfig {
            rows: 1000,
            zips_per_city: 10,
            seed: 0xC0FFEE,
        }
    }
}

/// A generated clean customer table. All canonical CFDs hold by
/// construction: zip → (city, street) via fixed maps, cc ↔ cnt fixed.
pub fn generate_customers(cfg: &CustomerConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Table::new("customer", customer_schema());
    for i in 0..cfg.rows {
        let country = &COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        let city_idx = rng.gen_range(0..country.cities.len());
        let city = country.cities[city_idx];
        let zip_idx = rng.gen_range(0..cfg.zips_per_city);
        // Zips embed the city so that (CNT, ZIP) → CITY holds by construction.
        let zip = format!("{}{} {}{}", country.zip_prefix, city_idx + 1, zip_idx, city);
        // Street is a function of the zip (for every country — stronger than
        // needed, but consistent with φ2 which only requires it for UK).
        let street = STREETS[(city_idx * 31 + zip_idx * 7) % STREETS.len()];
        let name = format!("{}{}", FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())], i);
        // Area code: a function of the city.
        let ac = format!("{}{}", country.cc, 10 + city_idx);
        t.insert(vec![
            Value::str(name),
            Value::str(country.name),
            Value::str(city),
            Value::str(zip),
            Value::str(street),
            Value::str(country.cc),
            Value::str(ac),
        ])
        .expect("generated row fits schema");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generator_is_deterministic() {
        let cfg = CustomerConfig {
            rows: 50,
            ..CustomerConfig::default()
        };
        let a = generate_customers(&cfg);
        let b = generate_customers(&cfg);
        let rows_a: Vec<_> = a.iter().map(|(_, r)| r.to_vec()).collect();
        let rows_b: Vec<_> = b.iter().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(rows_a, rows_b);
    }

    #[test]
    fn clean_data_satisfies_fd_cnt_zip_city() {
        let t = generate_customers(&CustomerConfig {
            rows: 500,
            ..CustomerConfig::default()
        });
        let mut map: HashMap<(String, String), String> = HashMap::new();
        for (_, r) in t.iter() {
            let key = (r[1].to_string(), r[3].to_string());
            let city = r[2].to_string();
            if let Some(prev) = map.insert(key, city.clone()) {
                assert_eq!(prev, city, "FD [CNT,ZIP] -> CITY violated by generator");
            }
        }
    }

    #[test]
    fn clean_data_satisfies_cc_cnt_bindings() {
        let t = generate_customers(&CustomerConfig {
            rows: 300,
            ..CustomerConfig::default()
        });
        for (_, r) in t.iter() {
            let (cnt, cc) = (r[1].to_string(), r[5].to_string());
            match cc.as_str() {
                "44" => assert_eq!(cnt, "UK"),
                "01" => assert_eq!(cnt, "US"),
                "31" => assert_eq!(cnt, "NL"),
                other => panic!("unexpected CC {other}"),
            }
        }
    }

    #[test]
    fn clean_data_satisfies_zip_street_for_uk() {
        let t = generate_customers(&CustomerConfig {
            rows: 400,
            ..CustomerConfig::default()
        });
        let mut map: HashMap<String, String> = HashMap::new();
        for (_, r) in t.iter() {
            if r[1].to_string() == "UK" {
                let zip = r[3].to_string();
                let street = r[4].to_string();
                if let Some(prev) = map.insert(zip, street.clone()) {
                    assert_eq!(prev, street);
                }
            }
        }
    }

    #[test]
    fn canonical_cfds_parse_and_bind() {
        let cfds = canonical_cfds();
        assert_eq!(cfds.len(), 6);
        let schema = customer_schema();
        for c in &cfds {
            c.bind(&schema).unwrap();
        }
    }

    #[test]
    fn zips_per_city_controls_group_size() {
        let t = generate_customers(&CustomerConfig {
            rows: 1000,
            zips_per_city: 2,
            seed: 7,
        });
        let mut groups: HashMap<String, usize> = HashMap::new();
        for (_, r) in t.iter() {
            *groups.entry(r[3].to_string()).or_default() += 1;
        }
        let avg = 1000.0 / groups.len() as f64;
        assert!(avg > 10.0, "expected chunky groups, got avg {avg}");
    }
}
