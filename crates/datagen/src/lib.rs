//! # datagen — seeded workloads for the Semandaq reproduction
//!
//! Three generators:
//!
//! * [`customer`] — the demo paper's running example
//!   `customer(NAME, CNT, CITY, ZIP, STR, CC, AC)`, generated consistent
//!   with the canonical CFD set (φ1–φ4 plus country-code bindings);
//! * [`noise`] — controlled cell corruption (typos and value swaps) with a
//!   ground-truth mask for repair-quality scoring;
//! * [`generic`] — parameterized relations with planted FDs/CFDs for the
//!   discovery experiments;
//! * [`hosp`] — a HOSP-style provider relation (the other standard
//!   benchmark schema in the CFD-repair literature).
//!
//! Everything is seeded: the same config always yields the same bytes.

#![warn(missing_docs)]

pub mod customer;
pub mod generic;
pub mod hosp;
pub mod noise;

pub use customer::{canonical_cfds, customer_schema, generate_customers, CustomerConfig};
pub use generic::{generate_planted, GenericConfig, PlantedRelation};
pub use hosp::{generate_hosp, hosp_cfds, hosp_schema, HospConfig};
pub use noise::{inject_noise, CellNoise, NoiseConfig, NoiseKind};

use minidb::{Database, Table};

/// A ready-to-use dirty dataset: database with a `customer` table, the
/// canonical CFDs, and the injected-noise ground truth.
#[derive(Debug, Clone)]
pub struct DirtyCustomers {
    /// Database holding the (dirtied) `customer` table.
    pub db: Database,
    /// The canonical CFD set.
    pub cfds: Vec<cfd::Cfd>,
    /// Ground-truth noise mask.
    pub mask: Vec<CellNoise>,
    /// A pristine copy of the clean table (for repair-quality scoring).
    pub clean: Table,
}

/// One-call workload: generate customers, keep a clean copy, dirty the
/// editable attributes at `noise_rate`, and pack everything in a database.
/// Noise is 25% typos / 75% value swaps (see [`dirty_customers_typed`] to
/// control the mix).
pub fn dirty_customers(rows: usize, noise_rate: f64, seed: u64) -> DirtyCustomers {
    dirty_customers_typed(rows, noise_rate, seed, 0.25)
}

/// [`dirty_customers`] with an explicit typo fraction (the rest of the
/// noise is value swaps) — the knob behind ablation A2.
pub fn dirty_customers_typed(
    rows: usize,
    noise_rate: f64,
    seed: u64,
    typo_fraction: f64,
) -> DirtyCustomers {
    let cfg = CustomerConfig {
        rows,
        seed,
        ..CustomerConfig::default()
    };
    let clean = generate_customers(&cfg);
    let mut dirty = clean.clone();
    // NAME (0) is free text; corrupt the CFD-constrained attributes.
    let mask = inject_noise(
        &mut dirty,
        &NoiseConfig {
            rate: noise_rate,
            typo_fraction,
            columns: vec![1, 2, 3, 4, 5],
            seed: seed ^ 0x5EED,
        },
    );
    let mut db = Database::new();
    db.register_table(dirty);
    DirtyCustomers {
        db,
        cfds: canonical_cfds(),
        mask,
        clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_customers_is_self_consistent() {
        let d = dirty_customers(100, 0.05, 11);
        assert_eq!(d.db.table("customer").unwrap().len(), 100);
        assert_eq!(d.clean.len(), 100);
        assert!(!d.mask.is_empty());
        // Clean copy must differ from dirty exactly on the mask.
        let dirty = d.db.table("customer").unwrap();
        let mut diffs = 0usize;
        for (id, row) in dirty.iter() {
            let clean_row = d.clean.get(id).unwrap();
            for (c, (a, b)) in row.iter().zip(clean_row).enumerate() {
                if !a.strong_eq(b) {
                    diffs += 1;
                    assert!(
                        d.mask.iter().any(|m| m.row == id && m.col == c),
                        "unexplained diff at ({id:?}, {c})"
                    );
                }
            }
        }
        assert_eq!(diffs, d.mask.len());
    }

    #[test]
    fn zero_noise_matches_clean() {
        let d = dirty_customers(50, 0.0, 1);
        assert!(d.mask.is_empty());
        let dirty = d.db.table("customer").unwrap();
        for (id, row) in dirty.iter() {
            assert_eq!(row, d.clean.get(id).unwrap());
        }
    }
}
