//! Shared workload builders for the benchmark harness and the
//! figure/experiment regeneration binaries.

#![warn(missing_docs)]

use cfd::parse::parse_cfds;
use cfd::Cfd;
use datagen::{dirty_customers, DirtyCustomers};

/// Standard dirty-customer workload (seeded).
pub fn workload(rows: usize, noise: f64, seed: u64) -> DirtyCustomers {
    dirty_customers(rows, noise, seed)
}

/// A CFD set whose tableau for the embedded FD `[CNT, ZIP] → STR` has
/// `k` pattern rows (experiment E2: detection cost vs tableau size).
/// Pattern rows condition on synthetic countries `P0…P{k-1}` plus the
/// all-wildcard row, so they coexist consistently.
pub fn scaled_pattern_cfds(k: usize) -> Vec<Cfd> {
    let mut text = String::from("customer: [CNT, ZIP] -> [STR]\n");
    for i in 0..k.saturating_sub(1) {
        text.push_str(&format!("customer: [CNT='P{i}', ZIP=_] -> [STR=_]\n"));
    }
    parse_cfds(&text).expect("scaled pattern set parses")
}

/// A consistent constant-rule chain of length `n` over attributes
/// `A0 → A1 → … → A{n}` (experiment E6: consistency-check cost vs |Σ|).
pub fn rule_chain(n: usize) -> Vec<Cfd> {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!("r: [A{i}='v{i}'] -> [A{}='v{}']\n", i + 1, i + 1));
    }
    parse_cfds(&text).expect("rule chain parses")
}

/// Like [`rule_chain`] but with a contradiction at the end (the
/// inconsistent case of E6; the solver must exhaust the search).
pub fn contradictory_chain(n: usize) -> Vec<Cfd> {
    let mut cfds = rule_chain(n);
    let clash = parse_cfds(&format!(
        "r: [A0='v0'] -> [A{n}='not-v{n}']\nr: [B=_] -> [A0='v0']"
    ))
    .expect("clash parses");
    cfds.extend(clash);
    cfds
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd::satisfiability::check_consistency;
    use cfd::DomainSpec;

    #[test]
    fn scaled_pattern_sets_share_one_tableau() {
        let cfds = scaled_pattern_cfds(8);
        assert_eq!(cfds.len(), 8);
        let tabs = cfd::dependency::group_into_tableaux(&cfds);
        assert_eq!(tabs.len(), 1);
        assert_eq!(tabs[0].rows.len(), 8);
    }

    #[test]
    fn chains_have_expected_verdicts() {
        let dom = DomainSpec::all_infinite();
        assert!(check_consistency(&rule_chain(16), &dom)
            .unwrap()
            .is_consistent());
        assert!(!check_consistency(&contradictory_chain(8), &dom)
            .unwrap()
            .is_consistent());
    }
}
