//! Regenerate the content of the demo paper's Figures 2–5 as text.
//!
//! ```sh
//! cargo run --bin figures            # all figures
//! cargo run --bin figures -- fig2    # one figure
//! ```
//!
//! Workload: the paper's customer relation, 10 000 tuples, 5% cell noise
//! (seeded — output is fully deterministic).

use audit::{quality_map, quality_report};
use detect::detect_sql;
use explore::{diff_tables, NavigationSession, ReviewSession};
use minidb::Value;
use repair::{batch_repair, RepairConfig};
use sdq_bench::workload;

const ROWS: usize = 10_000;
const NOISE: f64 = 0.05;
const SEED: u64 = 2008;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    let mut w = workload(ROWS, NOISE, SEED);
    let original = w.db.table("customer").unwrap().clone();
    let report = detect_sql(&mut w.db, "customer", &w.cfds).unwrap();
    println!(
        "workload: {ROWS} tuples, {:.0}% noise, {} injected errors, {} violations detected\n",
        NOISE * 100.0,
        w.mask.len(),
        report.len()
    );

    if wanted("fig2") {
        println!("=== Figure 2: data exploration using CFDs ===");
        let table = w.db.table("customer").unwrap();
        let nav = NavigationSession::new(table, &w.cfds, &report).unwrap();
        println!("-- table 1: embedded FDs --");
        print!("{}", nav.render_fds());
        let fds = nav.fds();
        let busiest = fds.iter().max_by_key(|e| e.violations).unwrap();
        println!("-- table 2: pattern tuples of {} --", busiest.fd);
        print!("{}", nav.render_patterns(busiest.idx));
        let pattern = nav
            .patterns(busiest.idx)
            .into_iter()
            .max_by_key(|p| p.violations)
            .unwrap();
        println!("-- table 3: LHS matches of {} (top 5) --", pattern.pattern);
        print!("{}", nav.render_lhs(pattern.cfd_idx, 5));
        if let Some(worst) = nav
            .lhs_matches(pattern.cfd_idx)
            .into_iter()
            .find(|e| e.violating > 0)
        {
            println!(
                "-- table 4: RHS values under {:?} --",
                worst.key.iter().map(Value::render).collect::<Vec<_>>()
            );
            print!("{}", nav.render_rhs(pattern.cfd_idx, &worst.key));
        }
        println!();
    }

    if wanted("fig3") {
        println!("=== Figure 3: data quality map (first 20 lines) ===");
        let table = w.db.table("customer").unwrap();
        let map = quality_map(table, &report);
        for line in map.render(100).lines().take(22) {
            println!("{line}");
        }
        println!("worst offenders:");
        for r in map.worst(5) {
            println!("  row {:<6} vio(t) = {}", r.row.0, r.vio);
        }
        println!();
    }

    if wanted("fig4") {
        println!("=== Figure 4: data quality report ===");
        let table = w.db.table("customer").unwrap();
        let audit = quality_report(table, &w.cfds, &report).unwrap();
        print!("{}", audit.render());
        println!();
    }

    if wanted("fig5") {
        println!("=== Figure 5: data cleansing review ===");
        let result =
            batch_repair(&mut w.db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
        println!(
            "candidate repair: {} changes, cost {:.2}, {} residual violations",
            result.changes.len(),
            result.total_cost,
            result.residual.len()
        );
        println!("-- modified values (first 10 rows of the diff) --");
        let diff = diff_tables(&original, w.db.table("customer").unwrap());
        for line in diff.lines().take(14) {
            println!("{line}");
        }
        let mut session =
            ReviewSession::new(&mut w.db, "customer", &w.cfds, &result.changes).unwrap();
        println!("-- ranked alternatives for the first three modifications --");
        for i in 0..3.min(session.entries().len()) {
            let e = session.entries()[i].clone();
            println!(
                "  row {} {}: '{}' -> '{}'",
                e.row.0,
                e.attribute,
                e.original.render(),
                e.proposed.render()
            );
            for alt in session.alternatives(i, 3).unwrap() {
                println!(
                    "      alt: {:<16} cost {:.2} consistent {}",
                    alt.value.render(),
                    alt.cost,
                    alt.consistent
                );
            }
        }
        let before = session.current_violations();
        let conflicts = session.override_with(0, Value::str("Atlantis")).unwrap();
        println!(
            "-- override entry 0 with 'Atlantis': violations {} -> {}, {} conflicting tuples --",
            before,
            session.current_violations(),
            conflicts.len()
        );
    }
}
