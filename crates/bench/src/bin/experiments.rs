//! Regenerate the measured experiment tables E1–E16 / A1–A2 recorded in
//! EXPERIMENTS.md (wall-clock timings plus quality metrics).
//!
//! ```sh
//! cargo run --release --bin experiments           # all experiments
//! cargo run --release --bin experiments -- e1 e5  # a subset
//! ```
//!
//! E8 (detection engines), E9 (sharded cluster), E10 (batched vs per-row
//! ingest), E11 (sharded repair), E13 (chunked columns + morsel scaling),
//! E14 (tracing overhead), E15 (TCP service throughput vs client
//! count) and E16 (WAL replay time, spill-budget detect) record a
//! machine-readable baseline (`rows`,
//! `engine`, `ns_per_op`) into `BENCH_detection.json` for regression
//! tracking. The file is merged, not overwritten: re-running one
//! experiment updates its own entries and leaves the others' in place.

use std::time::Instant;

use api::{dispatch, Mutation, MutationBatch, QualityBackend, Request};
use cfd::satisfiability::check_consistency;
use cfd::DomainSpec;
use cluster::{HashRouter, RoundRobinRouter, ShardRouter, ShardedQualityServer};
use colstore::{
    detect_cached, detect_columnar, detect_on_snapshot, detect_on_snapshot_threads, Snapshot,
    SnapshotCache,
};
use detect::{
    detect_native, detect_parallel, detect_sql, detect_sql_per_pattern, IncrementalDetector,
};
use discovery::{
    discover_fds, mine_constant_cfds, mine_variable_cfds, CtaneConfig, MinerConfig, TaneConfig,
};
use minidb::Value;
use repair::{batch_repair, score_repair, RepairConfig};
use sdq_bench::{contradictory_chain, rule_chain, scaled_pattern_cfds, workload};

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Loopback service config for E15: OS-assigned port so concurrent runs
/// never collide, defaults otherwise.
fn e15_config() -> net::NetConfig {
    net::NetConfig {
        addr: "127.0.0.1:0".into(),
        net_threads: 4,
        max_conns: 64,
        queue_depth: 256,
        idle_timeout: std::time::Duration::from_secs(30),
        max_frame: api::MAX_FRAME_BYTES,
    }
}

/// Mean ns/op of `f` over `iters` runs (one untimed warm-up).
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Render the detection baseline as JSON by hand (no serializer in the
/// tree): `[{"rows": n, "engine": "...", "ns_per_op": x}, ...]`.
fn render_baseline_json(entries: &[(usize, String, f64)]) -> String {
    let mut out = String::from("[\n");
    for (i, (rows, engine, ns)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rows\": {rows}, \"engine\": \"{engine}\", \"ns_per_op\": {ns:.0}}}"
        ));
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Parse the flat baseline format [`render_baseline_json`] writes (one
/// entry per line) so a partial re-run can merge instead of clobber.
fn parse_baseline_json(text: &str) -> Vec<(usize, String, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    text.lines()
        .filter_map(|line| {
            let rows = field(line, "\"rows\":")?.parse().ok()?;
            let engine = field(line, "\"engine\":")?;
            let ns = field(line, "\"ns_per_op\":")?.parse().ok()?;
            Some((rows, engine, ns))
        })
        .collect()
}

/// Merge this run's entries over the existing file (same `(rows, engine)`
/// replaces, new entries append) and write it back.
fn write_baseline(measured: Vec<(usize, String, f64)>) {
    const PATH: &str = "BENCH_detection.json";
    let mut merged = std::fs::read_to_string(PATH)
        .map(|t| parse_baseline_json(&t))
        .unwrap_or_default();
    for (rows, engine, ns) in measured {
        match merged
            .iter_mut()
            .find(|(r, e, _)| *r == rows && *e == engine)
        {
            Some(slot) => slot.2 = ns,
            None => merged.push((rows, engine, ns)),
        }
    }
    let json = render_baseline_json(&merged);
    std::fs::write(PATH, &json).expect("write BENCH_detection.json");
    println!("wrote {PATH} ({} entries)\n", merged.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if wanted("e1") {
        println!("== E1: detection time vs relation size (5% noise) ==");
        println!(
            "{:>8} {:>12} {:>12} {:>10}",
            "rows", "sql (ms)", "native (ms)", "violations"
        );
        for rows in [1_000usize, 5_000, 20_000, 50_000] {
            let w = workload(rows, 0.05, 11);
            let mut db = w.db.clone();
            let t0 = Instant::now();
            let sql = detect_sql(&mut db, "customer", &w.cfds).unwrap();
            let t_sql = ms(t0);
            let t0 = Instant::now();
            let native = detect_native(w.db.table("customer").unwrap(), &w.cfds).unwrap();
            let t_native = ms(t0);
            assert_eq!(sql.len(), native.len());
            println!("{rows:>8} {t_sql:>12.1} {t_native:>12.1} {:>10}", sql.len());
        }
        println!();
    }

    if wanted("e2") {
        println!("== E2: detection time vs pattern-tableau size (10k rows) ==");
        println!(
            "{:>10} {:>14} {:>14}",
            "patterns", "sql (ms)", "native (ms)"
        );
        let w = workload(10_000, 0.05, 13);
        for k in [1usize, 4, 16, 64] {
            let cfds = scaled_pattern_cfds(k);
            let mut db = w.db.clone();
            let t0 = Instant::now();
            detect_sql(&mut db, "customer", &cfds).unwrap();
            let t_sql = ms(t0);
            let t0 = Instant::now();
            detect_native(w.db.table("customer").unwrap(), &cfds).unwrap();
            let t_native = ms(t0);
            println!("{k:>10} {t_sql:>14.1} {t_native:>14.1}");
        }
        println!();
    }

    if wanted("e3") {
        println!("== E3: incremental vs batch detection (20k rows) ==");
        println!(
            "{:>8} {:>16} {:>16}",
            "delta", "incremental (ms)", "batch (ms)"
        );
        let w = workload(20_000, 0.02, 19);
        let base = IncrementalDetector::build(w.db.table("customer").unwrap(), &w.cfds).unwrap();
        for delta in [1usize, 16, 256, 4_096] {
            let updates: Vec<(minidb::RowId, Vec<Value>, Vec<Value>)> =
                w.db.table("customer")
                    .unwrap()
                    .iter()
                    .take(delta)
                    .enumerate()
                    .map(|(i, (id, row))| {
                        let before = row.to_vec();
                        let mut after = before.clone();
                        after[2] = Value::str(format!("UPD{i}"));
                        (id, before, after)
                    })
                    .collect();
            // incremental
            let mut det = base.clone();
            let t0 = Instant::now();
            for (id, before, after) in &updates {
                det.update(*id, before, after);
            }
            let _ = det.total_violations();
            let t_inc = ms(t0);
            // batch re-run (after applying updates to a copy)
            let mut db = w.db.clone();
            for (id, _, after) in &updates {
                db.update_cell("customer", *id, 2, after[2].clone())
                    .unwrap();
            }
            let t0 = Instant::now();
            detect_native(db.table("customer").unwrap(), &w.cfds).unwrap();
            let t_batch = ms(t0);
            println!("{delta:>8} {t_inc:>16.2} {t_batch:>16.1}");
        }
        println!();
    }

    if wanted("e4") {
        println!("== E4: repair time vs relation size (5% noise) ==");
        println!(
            "{:>8} {:>12} {:>10} {:>10}",
            "rows", "repair (ms)", "changes", "residual"
        );
        for rows in [1_000usize, 5_000, 20_000] {
            let w = workload(rows, 0.05, 23);
            let mut db = w.db.clone();
            let t0 = Instant::now();
            let r = batch_repair(&mut db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
            let t = ms(t0);
            println!(
                "{rows:>8} {t:>12.1} {:>10} {:>10}",
                r.changes.len(),
                r.residual.len()
            );
        }
        println!();
    }

    if wanted("e5") {
        println!("== E5: repair quality vs noise rate (10k rows) ==");
        println!(
            "{:>7} {:>8} {:>9} {:>8} {:>8} {:>8} {:>8}",
            "noise", "errors", "changed", "P_loc", "R_loc", "P", "R"
        );
        for pct in [1u32, 2, 5, 10] {
            let w = workload(10_000, pct as f64 / 100.0, 29);
            let dirty = w.db.table("customer").unwrap().clone();
            let mut db = w.db.clone();
            let r = batch_repair(&mut db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
            assert!(r.residual.is_empty(), "E5 requires convergence");
            let q = score_repair(&dirty, db.table("customer").unwrap(), &w.clean);
            println!(
                "{pct:>6}% {:>8} {:>9} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                q.error_cells,
                q.changed_cells,
                q.precision_loc,
                q.recall_loc,
                q.precision,
                q.recall
            );
        }
        println!();
    }

    if wanted("e6") {
        println!("== E6: consistency analysis time vs |Σ| ==");
        println!(
            "{:>8} {:>18} {:>20}",
            "rules", "consistent (µs)", "contradictory (µs)"
        );
        let dom = DomainSpec::all_infinite();
        for n in [8usize, 32, 128, 256] {
            let cons = rule_chain(n);
            let t0 = Instant::now();
            for _ in 0..10 {
                check_consistency(&cons, &dom).unwrap();
            }
            let t_c = ms(t0) * 100.0; // 10 iters → µs
            let contra = contradictory_chain(n);
            let t0 = Instant::now();
            for _ in 0..10 {
                check_consistency(&contra, &dom).unwrap();
            }
            let t_i = ms(t0) * 100.0;
            println!("{n:>8} {t_c:>18.1} {t_i:>20.1}");
        }
        println!();
    }

    if wanted("e7") {
        println!("== E7: discovery time vs relation size ==");
        println!(
            "{:>8} {:>11} {:>8} {:>13} {:>8} {:>13} {:>8}",
            "rows", "tane (ms)", "#fds", "miner (ms)", "#const", "ctane (ms)", "#var"
        );
        for rows in [1_000usize, 5_000, 20_000] {
            let t = datagen::generate_customers(&datagen::CustomerConfig {
                rows,
                ..datagen::CustomerConfig::default()
            });
            let t0 = Instant::now();
            let fds = discover_fds(&t, &TaneConfig::default());
            let t_tane = ms(t0);
            let t0 = Instant::now();
            let consts = mine_constant_cfds(
                &t,
                &MinerConfig {
                    min_support: rows / 20,
                    max_lhs: 1,
                    relation: "customer".into(),
                },
            );
            let t_miner = ms(t0);
            let t0 = Instant::now();
            let vars = mine_variable_cfds(
                &t,
                &CtaneConfig {
                    max_lhs: 1,
                    max_constants: 1,
                    min_support: rows / 10,
                    relation: "customer".into(),
                },
            );
            let t_ctane = ms(t0);
            println!(
                "{rows:>8} {t_tane:>11.1} {:>8} {t_miner:>13.1} {:>8} {t_ctane:>13.1} {:>8}",
                fds.len(),
                consts.len(),
                vars.len()
            );
        }
        println!();
    }

    let mut baseline: Vec<(usize, String, f64)> = Vec::new();

    if wanted("e8") {
        println!("== E8: columnar vs row detection (customer workload, 5% noise) ==");
        println!(
            "{:>8} {:>13} {:>13} {:>13} {:>13} {:>9}",
            "rows", "native (ms)", "par4 (ms)", "columnar(ms)", "snapshot(ms)", "col/nat"
        );
        for rows in [1_000usize, 10_000, 100_000] {
            let w = workload(rows, 0.05, 11);
            let t = w.db.table("customer").unwrap();
            let iters = if rows >= 100_000 { 5 } else { 20 };
            let n_native = time_ns(iters, || {
                detect_native(t, &w.cfds).unwrap();
            });
            let n_par = time_ns(iters, || {
                detect_parallel(t, &w.cfds, 4).unwrap();
            });
            let n_col = time_ns(iters, || {
                detect_columnar(t, &w.cfds).unwrap();
            });
            let snap = Snapshot::of(t);
            let n_reuse = time_ns(iters, || {
                detect_on_snapshot(&snap, &w.cfds).unwrap();
            });
            // Engines must agree before their numbers mean anything.
            assert_eq!(
                detect_native(t, &w.cfds).unwrap().normalized(),
                detect_columnar(t, &w.cfds).unwrap().normalized()
            );
            println!(
                "{rows:>8} {:>13.1} {:>13.1} {:>13.1} {:>13.1} {:>8.1}x",
                n_native / 1e6,
                n_par / 1e6,
                n_col / 1e6,
                n_reuse / 1e6,
                n_native / n_col
            );
            baseline.push((rows, "native".into(), n_native));
            baseline.push((rows, "parallel4".into(), n_par));
            baseline.push((rows, "columnar".into(), n_col));
            baseline.push((rows, "columnar_reuse".into(), n_reuse));
        }
        // E8b: steady-state detection — repeated detects with k row
        // mutations between each (the monitoring scenario: a mostly-clean
        // 1%-noise table under a trickle of updates), full re-encode per
        // round vs the epoch-versioned cached+patched snapshot lifecycle.
        // Timed: the detection work itself (encode/patch + detect); the
        // `db.update_cell` application work is identical in both arms and
        // excluded.
        println!(
            "== E8b: steady-state detection (k mutations between repeat detects, 1% noise) =="
        );
        println!(
            "{:>8} {:>8} {:>16} {:>16} {:>9}",
            "rows", "k", "full (ms/det)", "cached (ms/det)", "speedup"
        );
        for (rows, frac, rounds) in [(100_000usize, 0.01, 20), (100_000, 0.001, 20)] {
            let w = workload(rows, 0.01, 11);
            let table = w.db.table("customer").unwrap();
            let ids: Vec<minidb::RowId> = table.row_ids();
            // Donor pool of existing CITY values: the stream rewrites a
            // fixed set of k rows with rotating in-domain values, so the
            // dirty fraction stays bounded at ~k rows instead of
            // accumulating round over round.
            let cities: Vec<Value> = {
                let mut seen = std::collections::HashSet::new();
                table
                    .iter()
                    .map(|(_, row)| row[2].clone())
                    .filter(|v| seen.insert(v.render()))
                    .take(64)
                    .collect()
            };
            let k = ((rows as f64) * frac) as usize;
            // One shared mutation script so both arms see identical data.
            let mutation = |round: usize, i: usize| {
                let id = ids[(i * 7) % ids.len()];
                let v = cities[(round + i) % cities.len()].clone();
                (id, 2usize, v)
            };
            // Arm 1: full re-encode per round.
            let mut db = w.db.clone();
            let mut full_ns = 0f64;
            for round in 0..rounds {
                for i in 0..k {
                    let (id, col, v) = mutation(round, i);
                    db.update_cell("customer", id, col, v).unwrap();
                }
                let t0 = Instant::now();
                detect_columnar(db.table("customer").unwrap(), &w.cfds).unwrap();
                full_ns += t0.elapsed().as_nanos() as f64;
            }
            full_ns /= rounds as f64;
            // Arm 2: cached + patched snapshot (the note_* lifecycle calls
            // are part of its cost and are timed).
            let mut db = w.db.clone();
            let mut cache = SnapshotCache::new();
            detect_cached(&mut cache, db.table("customer").unwrap(), &w.cfds).unwrap();
            let mut cached_ns = 0f64;
            for round in 0..rounds {
                for i in 0..k {
                    let (id, col, v) = mutation(round, i);
                    db.update_cell("customer", id, col, v).unwrap();
                    let t0 = Instant::now();
                    cache.note_set_cell(db.table("customer").unwrap(), id, col);
                    cached_ns += t0.elapsed().as_nanos() as f64;
                }
                let t0 = Instant::now();
                detect_cached(&mut cache, db.table("customer").unwrap(), &w.cfds).unwrap();
                cached_ns += t0.elapsed().as_nanos() as f64;
            }
            cached_ns /= rounds as f64;
            // rounds * k must stay under the cache's patch budget
            // (threshold * rows) for a pure patched-path measurement; warn
            // instead of aborting so a parameter tweak cannot discard the
            // whole run's results.
            if cache.encodes() != 1 {
                println!(
                    "  note: cached arm re-encoded {} times (patch budget \
                     crossed) — its numbers include rebuilds",
                    cache.encodes()
                );
            }
            println!(
                "{rows:>8} {k:>8} {:>16.1} {:>16.1} {:>8.1}x",
                full_ns / 1e6,
                cached_ns / 1e6,
                full_ns / cached_ns
            );
            let label: &str = if frac >= 0.01 {
                "steady_full_reencode_1pct"
            } else {
                "steady_full_reencode_0p1pct"
            };
            let cached_label: &str = if frac >= 0.01 {
                "steady_cached_patched_1pct"
            } else {
                "steady_cached_patched_0p1pct"
            };
            baseline.push((rows, label.into(), full_ns));
            baseline.push((rows, cached_label.into(), cached_ns));
        }

        // E8c: batch_repair round metrics — the detect half of every round
        // now rides the patched snapshot.
        println!("== E8c: batch_repair rounds (5% noise) ==");
        println!(
            "{:>8} {:>12} {:>8} {:>14} {:>10}",
            "rows", "repair (ms)", "rounds", "ms/round", "changes"
        );
        for rows in [5_000usize, 20_000] {
            let w = workload(rows, 0.05, 23);
            let mut db = w.db.clone();
            let t0 = Instant::now();
            let r = batch_repair(&mut db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
            let total_ns = t0.elapsed().as_nanos() as f64;
            assert!(r.residual.is_empty(), "E8c requires convergence");
            let per_round = total_ns / r.iterations as f64;
            println!(
                "{rows:>8} {:>12.1} {:>8} {:>14.1} {:>10}",
                total_ns / 1e6,
                r.iterations,
                per_round / 1e6,
                r.changes.len()
            );
            baseline.push((rows, "repair_batch_total".into(), total_ns));
            baseline.push((rows, "repair_batch_per_round".into(), per_round));
        }
    }

    if wanted("e9") {
        println!("== E9: sharded scatter/gather detection (100k rows, 5% noise) ==");
        let rows = 100_000usize;
        let w = workload(rows, 0.05, 11);
        let t = w.db.table("customer").unwrap();
        let iters = 5u32;
        // Single-node columnar full detect is the speedup reference.
        let n_single = time_ns(iters, || {
            detect_columnar(t, &w.cfds).unwrap();
        });
        let reference = detect_columnar(t, &w.cfds).unwrap().normalized();
        println!("single-node columnar: {:>8.1} ms", n_single / 1e6);
        baseline.push((rows, "sharded_baseline_columnar".into(), n_single));
        println!(
            "{:>7} {:>12} {:>10} {:>10} {:>12} {:>11} {:>9} {:>8}",
            "shards",
            "router",
            "cold (ms)",
            "warm (ms)",
            "touched (ms)",
            "merge (ms)",
            "members",
            "speedup"
        );
        // Round-robin is the worst case for exchange volume (every group
        // splits); the hash run keyed on CNT keeps [CNT, ZIP] groups
        // shard-local for contrast.
        let configs: Vec<(usize, Box<dyn ShardRouter>, &str)> = vec![
            (1, Box::new(RoundRobinRouter::default()), "rr"),
            (2, Box::new(RoundRobinRouter::default()), "rr"),
            (4, Box::new(RoundRobinRouter::default()), "rr"),
            (8, Box::new(RoundRobinRouter::default()), "rr"),
            (4, Box::new(HashRouter::new(vec![1])), "hash"),
        ];
        for (n, router, rname) in configs {
            let mut c = ShardedQualityServer::partition(t, n, router).unwrap();
            c.register_cfds(w.cfds.clone()).unwrap();
            // Cold: first detect pays every shard's snapshot encode.
            let t0 = Instant::now();
            let first = c.detect().unwrap();
            let cold_ns = t0.elapsed().as_nanos() as f64;
            assert_eq!(first.normalized(), reference.clone(), "sharded == single");
            // Warm: unchanged shards replay their memoized partials.
            let warm_ns = time_ns(iters, || {
                c.detect().unwrap();
            });
            // Touched: one routed cell update per shard between detects —
            // the steady monitoring load with every shard's memo dirtied.
            let picks: Vec<minidb::RowId> = (0..n)
                .filter_map(|s| c.shard_table(s).iter().next().map(|(id, _)| id))
                .collect();
            let cities: Vec<Value> = vec![Value::str("EDI"), Value::str("NYC")];
            let rounds = 5;
            let mut touched_ns = 0f64;
            for round in 0..rounds {
                let t0 = Instant::now();
                for &id in &picks {
                    c.update_cell(id, 2, cities[round % 2].clone()).unwrap();
                }
                c.detect().unwrap();
                touched_ns += t0.elapsed().as_nanos() as f64;
            }
            touched_ns /= rounds as f64;
            let stats = c.last_detect_stats();
            println!(
                "{n:>7} {rname:>12} {:>10.1} {:>10.1} {:>12.1} {:>11.1} {:>9} {:>7.1}x",
                cold_ns / 1e6,
                warm_ns / 1e6,
                touched_ns / 1e6,
                stats.merge_ns as f64 / 1e6,
                stats.exported_members,
                n_single / touched_ns
            );
            baseline.push((rows, format!("sharded_cold_s{n}_{rname}"), cold_ns));
            baseline.push((rows, format!("sharded_warm_s{n}_{rname}"), warm_ns));
            baseline.push((rows, format!("sharded_touched_s{n}_{rname}"), touched_ns));
            baseline.push((
                rows,
                format!("sharded_merge_s{n}_{rname}"),
                stats.merge_ns as f64,
            ));
        }
        println!();
    }

    if wanted("e10") {
        println!("== E10: batched vs per-row ingest (100k rows, warm snapshots) ==");
        let rows = 100_000usize;
        let w = workload(rows, 0.05, 11);
        let t = w.db.table("customer").unwrap();
        // One fixed mixed-ingest script: a routed update + delete stream
        // followed by the bulk of the inserts (updates and deletes target
        // disjoint row ranges so the same script is valid in both arms).
        // 10k mutations keeps every shard inside its snapshot patch
        // budget, so both arms stay on the incremental path throughout.
        let ids = t.row_ids();
        let donors: Vec<Vec<minidb::Value>> = t.iter().take(64).map(|(_, r)| r.to_vec()).collect();
        let cities: Vec<Value> = {
            let mut seen = std::collections::HashSet::new();
            t.iter()
                .map(|(_, row)| row[2].clone())
                .filter(|v| seen.insert(v.render()))
                .take(64)
                .collect()
        };
        let mut mutations: Vec<Mutation> = Vec::new();
        for i in 0..1_000 {
            mutations.push(Mutation::SetCell {
                row: ids[i * 7],
                col: 2,
                value: cities[i % cities.len()].clone(),
            });
        }
        for i in 0..1_000 {
            mutations.push(Mutation::Delete(ids[50_000 + i * 3]));
        }
        for i in 0..8_000 {
            mutations.push(Mutation::Insert(donors[i % donors.len()].clone()));
        }
        let batch = MutationBatch {
            mutations: mutations.clone(),
        };

        /// Time one arm, min-of-`iters` (the container's scheduler is
        /// noisy; the minimum is the honest cost of the code path): fresh
        /// backend per iteration (built by `make`, CFDs registered,
        /// snapshots warmed by one detect), then the ingest script —
        /// per-row through the unified mutation surface, or as one
        /// `apply_batch`.
        fn time_arm(
            iters: u32,
            mut make: impl FnMut() -> Box<dyn QualityBackend>,
            mutations: &[Mutation],
            batched: Option<&MutationBatch>,
        ) -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..iters {
                let mut b = make();
                b.detect().expect("warm detect");
                // The script is cloned *outside* the timed region in both
                // arms — what's measured is application, not cloning.
                match batched {
                    Some(batch) => {
                        let batch = batch.clone();
                        let t0 = Instant::now();
                        b.apply_batch(batch).expect("batch applies");
                        best = best.min(t0.elapsed().as_nanos() as f64);
                    }
                    None => {
                        let muts = mutations.to_vec();
                        let t0 = Instant::now();
                        for m in muts {
                            api::apply_mutation(b.as_mut(), m).expect("mutation applies");
                        }
                        best = best.min(t0.elapsed().as_nanos() as f64);
                    }
                }
            }
            best
        }

        println!(
            "{:>10} {:>7} {:>8} {:>14} {:>14} {:>9}  ({} mutations: 1k upd / 1k del / 8k ins)",
            "backend",
            "router",
            "shards",
            "per-row (ms)",
            "batched (ms)",
            "speedup",
            mutations.len()
        );
        let iters = 7u32;
        // Single-node server, columnar cache.
        let make_single = || -> Box<dyn QualityBackend> {
            let mut s = semandaq_core::QualityServer::new(w.db.clone(), "customer").unwrap();
            s.register_cfds(datagen::customer::CANONICAL_CFDS).unwrap();
            Box::new(s)
        };
        let single_perrow = time_arm(iters, make_single, &mutations, None);
        let single_batched = time_arm(iters, make_single, &mutations, Some(&batch));
        println!(
            "{:>10} {:>7} {:>8} {:>14.1} {:>14.1} {:>8.2}x",
            "single",
            "-",
            1,
            single_perrow / 1e6,
            single_batched / 1e6,
            single_perrow / single_batched
        );
        baseline.push((rows, "e10_single_perrow".into(), single_perrow));
        baseline.push((rows, "e10_single_batched".into(), single_batched));
        // Sharded cluster: one routing pass, per-shard application with
        // bulk insert runs, one snapshot patch per touched shard.
        type RouterFactory = fn() -> Box<dyn ShardRouter>;
        let configs: Vec<(usize, RouterFactory, &str)> = vec![
            (4, || Box::new(RoundRobinRouter::default()), "rr"),
            (8, || Box::new(RoundRobinRouter::default()), "rr"),
            (4, || Box::new(HashRouter::new(vec![1])), "hash"),
        ];
        for (n, router, rname) in configs {
            let make_sharded = || -> Box<dyn QualityBackend> {
                let mut c = ShardedQualityServer::partition(t, n, router()).unwrap();
                c.register_cfds(w.cfds.clone()).unwrap();
                Box::new(c)
            };
            let perrow = time_arm(iters, make_sharded, &mutations, None);
            let batched = time_arm(iters, make_sharded, &mutations, Some(&batch));
            println!(
                "{:>10} {:>7} {:>8} {:>14.1} {:>14.1} {:>8.2}x",
                "sharded",
                rname,
                n,
                perrow / 1e6,
                batched / 1e6,
                perrow / batched
            );
            baseline.push((rows, format!("e10_sharded_perrow_s{n}_{rname}"), perrow));
            baseline.push((rows, format!("e10_sharded_batched_s{n}_{rname}"), batched));
        }
        println!();
    }

    if wanted("e11") {
        println!("== E11: sharded repair (5% noise, cold clusters) ==");
        for rows in [20_000usize, 100_000] {
            let w = workload(rows, 0.05, 23);
            let t = w.db.table("customer").unwrap();
            // Single-node batch repair is the reference (and the
            // correctness oracle: the cluster must apply the identical
            // change list).
            let mut db = w.db.clone();
            let t0 = Instant::now();
            let single =
                batch_repair(&mut db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
            let single_ns = t0.elapsed().as_nanos() as f64;
            assert!(single.residual.is_empty(), "E11 requires convergence");
            println!(
                "single-node @ {rows} rows: {:>8.1} ms, {} rounds ({:.1} ms/round), {} changes",
                single_ns / 1e6,
                single.iterations,
                single_ns / 1e6 / single.iterations as f64,
                single.changes.len()
            );
            baseline.push((rows, "e11_single_repair_total".into(), single_ns));
            baseline.push((
                rows,
                "e11_single_repair_per_round".into(),
                single_ns / single.iterations as f64,
            ));
            println!(
                "{:>7} {:>7} {:>12} {:>8} {:>12} {:>9} {:>10}",
                "shards", "router", "repair (ms)", "rounds", "ms/round", "changes", "vs single"
            );
            type RouterFactory = fn() -> Box<dyn ShardRouter>;
            let rr: RouterFactory = || Box::new(RoundRobinRouter::default());
            let hash: RouterFactory = || Box::new(HashRouter::new(vec![1]));
            let configs: Vec<(usize, RouterFactory, &str)> = vec![
                (1, rr, "rr"),
                (2, rr, "rr"),
                (4, rr, "rr"),
                (8, rr, "rr"),
                (2, hash, "hash"),
                (4, hash, "hash"),
                (8, hash, "hash"),
            ];
            for (n, router, rname) in configs {
                let mut c = ShardedQualityServer::partition(t, n, router()).unwrap();
                c.register_cfds(w.cfds.clone()).unwrap();
                let t0 = Instant::now();
                let r = c.repair().unwrap();
                let total_ns = t0.elapsed().as_nanos() as f64;
                assert!(r.residual.is_empty(), "sharded E11 requires convergence");
                assert_eq!(
                    r.changes.len(),
                    single.changes.len(),
                    "sharded repair must equal single-node"
                );
                let per_round = total_ns / r.iterations as f64;
                println!(
                    "{n:>7} {rname:>7} {:>12.1} {:>8} {:>12.1} {:>9} {:>9.2}x",
                    total_ns / 1e6,
                    r.iterations,
                    per_round / 1e6,
                    r.changes.len(),
                    single_ns / total_ns
                );
                baseline.push((
                    rows,
                    format!("e11_sharded_repair_total_s{n}_{rname}"),
                    total_ns,
                ));
                baseline.push((
                    rows,
                    format!("e11_sharded_repair_per_round_s{n}_{rname}"),
                    per_round,
                ));
            }
        }
        println!();
    }

    if wanted("e12") {
        println!("== E12: registry-derived detect/repair latency percentiles ==");
        let rows = 20_000usize;
        let w = workload(rows, 0.05, 29);
        let t = w.db.table("customer").unwrap();
        // Fresh registry so the percentiles cover exactly this workload,
        // not whatever earlier experiments accumulated.
        obs::reset();
        let mut c =
            ShardedQualityServer::partition(t, 4, Box::new(RoundRobinRouter::default())).unwrap();
        c.register_cfds(w.cfds.clone()).unwrap();
        // A steady-state monitoring loop through the instrumented dispatch
        // path: one routed cell touch, one detect, repeated — so
        // api_request_ns{kind="detect"} holds real cached-path samples.
        let ids = t.row_ids();
        dispatch(&mut c, Request::Detect); // cold encode, excluded below by the mutate loop's volume
        for i in 0..32u64 {
            let id = ids[i as usize % ids.len()];
            let v = t.get(id).unwrap()[2].clone();
            dispatch(
                &mut c,
                Request::UpdateCell {
                    row: id,
                    col: 2,
                    value: v,
                },
            );
            dispatch(&mut c, Request::Detect);
        }
        dispatch(&mut c, Request::Repair);
        let m = obs::snapshot();
        println!(
            "{:>34} {:>8} {:>12} {:>12} {:>12}",
            "metric", "samples", "p50 (ms)", "p95 (ms)", "max (ms)"
        );
        for (metric, label) in [
            ("api_request_ns{kind=\"detect\"}", "e12_detect_dispatch"),
            ("cluster_shard_export_ns", "e12_shard_export"),
            ("cluster_merge_ns", "e12_cluster_merge"),
            ("repair_resolve_ns", "e12_repair_resolve"),
        ] {
            let h = m.histogram(metric).expect("instrumented path ran");
            println!(
                "{:>34} {:>8} {:>12.3} {:>12.3} {:>12.3}",
                metric,
                h.count,
                h.p50 as f64 / 1e6,
                h.p95 as f64 / 1e6,
                h.max as f64 / 1e6
            );
            baseline.push((rows, format!("{label}_p50"), h.p50 as f64));
            baseline.push((rows, format!("{label}_p95"), h.p95 as f64));
            baseline.push((rows, format!("{label}_p99"), h.p99 as f64));
        }
        println!();
    }

    if wanted("e13") {
        println!("== E13: chunked columns & morsel-driven detection ==");
        // E13a: append ingest under live reader snapshots. A stream of
        // single-row inserts patches the cached snapshot while a reader
        // grabs (and holds) a snapshot Arc every 512 rows — the monitoring
        // pattern that makes copy-on-write visible. Chunked columns
        // unshare only the tail chunk per grab; the contiguous layout
        // (one giant chunk) re-copies every code on each post-grab patch.
        let base_rows = 4_096usize;
        let append_rows = 50_000usize;
        let base = datagen::generate_customers(&datagen::CustomerConfig {
            rows: base_rows,
            ..datagen::CustomerConfig::default()
        });
        let donors: Vec<Vec<Value>> = base.iter().take(64).map(|(_, r)| r.to_vec()).collect();
        let run_append = |cache: SnapshotCache| -> f64 {
            let mut table = base.clone();
            // An unbounded patch budget keeps both arms on the incremental
            // path for the whole stream — re-encodes would cost O(n) in
            // both layouts and drown the layout difference being measured.
            let mut cache = cache.with_delta_threshold(f64::INFINITY);
            cache.snapshot(&table); // warm encode, untimed
            let mut readers: Vec<std::sync::Arc<Snapshot>> = Vec::new();
            let t0 = Instant::now();
            for i in 0..append_rows {
                let id = table.insert(donors[i % donors.len()].clone()).unwrap();
                cache.note_insert(&table, id);
                if i % 512 == 0 {
                    readers.push(cache.snapshot(&table));
                }
            }
            t0.elapsed().as_nanos() as f64 / append_rows as f64
        };
        let chunked = run_append(SnapshotCache::new());
        let cow = run_append(SnapshotCache::new().with_chunk_rows(1 << 22));
        println!(
            "append ingest ({append_rows} rows, reader snapshot every 512): \
             chunked {:>8.0} ns/row, contiguous CoW {:>8.0} ns/row, {:.1}x",
            chunked,
            cow,
            cow / chunked
        );
        baseline.push((append_rows, "e13_append_chunked".into(), chunked));
        baseline.push((append_rows, "e13_append_contiguous_cow".into(), cow));

        // E13b/c: warm detection over one reused snapshot — chunk-size
        // sweep at one thread, then thread scaling at the default chunk.
        let rows = 100_000usize;
        let w = workload(rows, 0.05, 11);
        let t = w.db.table("customer").unwrap();
        let cols: Vec<usize> = (0..t.schema().arity()).collect();
        let iters = 5u32;
        println!(
            "{:>12} {:>8} {:>14}",
            "chunk_rows", "threads", "detect (ms)"
        );
        for chunk in [1_024usize, 4_096, 16_384] {
            let snap = Snapshot::projected_with_chunk(t, &cols, chunk);
            let n = time_ns(iters, || {
                detect_on_snapshot(&snap, &w.cfds).unwrap();
            });
            println!("{chunk:>12} {:>8} {:>14.1}", 1, n / 1e6);
            baseline.push((rows, format!("e13_warm_detect_c{chunk}"), n));
        }
        let snap = Snapshot::of(t);
        for threads in [1usize, 2, 4] {
            let n = time_ns(iters, || {
                detect_on_snapshot_threads(&snap, &w.cfds, threads).unwrap();
            });
            println!("{:>12} {threads:>8} {:>14.1}", "default", n / 1e6);
            baseline.push((rows, format!("e13_detect_threads{threads}"), n));
        }
        println!();
    }

    if wanted("e14") {
        println!("== E14: request-tracing overhead (warm cached detect) ==");
        // The contract tracing is sold on: a *disabled* span site is one
        // relaxed load, so the instrumented engine at SDQ_TRACE unset must
        // price like the uninstrumented one. Measure the same warm cached
        // detect through the dispatch path (root span site included) with
        // tracing off, then on — both land in the baseline so a regression
        // in either shows up in BENCH_detection.json.
        let rows = 100_000usize;
        let w = workload(rows, 0.05, 17);
        let mut s = semandaq_core::QualityServer::new(w.db.clone(), "customer").unwrap();
        s.register_cfds(datagen::customer::CANONICAL_CFDS).unwrap();
        dispatch(&mut s, Request::Detect); // cold encode, untimed
        let iters = 20u32;
        obs::trace::set_enabled(false);
        let off = time_ns(iters, || {
            dispatch(&mut s, Request::Detect);
        });
        obs::trace::set_enabled(true);
        let on = time_ns(iters, || {
            dispatch(&mut s, Request::Detect);
        });
        obs::trace::set_enabled(false);
        obs::trace::clear();
        println!(
            "warm detect ({rows} rows): tracing off {:>10.1} µs, on {:>10.1} µs \
             ({:+.2}% when enabled)",
            off / 1e3,
            on / 1e3,
            (on / off - 1.0) * 100.0
        );
        baseline.push((rows, "e14_warm_detect_trace_off".into(), off));
        baseline.push((rows, "e14_warm_detect_trace_on".into(), on));
        println!();
    }

    if wanted("e15") {
        println!("== E15: TCP service throughput vs client count (10% mutation mix) ==");
        println!(
            "{:>9} {:>8} {:>12} {:>12}",
            "backend", "clients", "req/s", "ns/req"
        );
        let rows = 10_000usize;
        let w = workload(rows, 0.05, 23);
        let donor: Vec<Value> = {
            let mut r =
                w.db.table("customer")
                    .unwrap()
                    .iter()
                    .next()
                    .unwrap()
                    .1
                    .to_vec();
            r[2] = Value::str("E15CITY");
            r
        };
        for backend_kind in ["single", "cluster"] {
            for clients in [1usize, 4, 16] {
                let server = match backend_kind {
                    "single" => {
                        let mut s =
                            semandaq_core::QualityServer::new(w.db.clone(), "customer").unwrap();
                        s.register_cfds(datagen::customer::CANONICAL_CFDS).unwrap();
                        net::NetServer::serve(
                            Box::new(s) as Box<dyn QualityBackend + Send>,
                            e15_config(),
                        )
                        .unwrap()
                    }
                    _ => {
                        let mut c = ShardedQualityServer::partition(
                            w.db.table("customer").unwrap(),
                            3,
                            Box::new(HashRouter::new(vec![1])),
                        )
                        .unwrap();
                        c.register_cfds(w.cfds.clone()).unwrap();
                        net::NetServer::serve(
                            Box::new(c) as Box<dyn QualityBackend + Send>,
                            e15_config(),
                        )
                        .unwrap()
                    }
                };
                let addr = server.local_addr();
                const REQS: usize = 200;
                let t0 = Instant::now();
                let sessions: Vec<_> = (0..clients)
                    .map(|c| {
                        let donor = donor.clone();
                        std::thread::spawn(move || {
                            let mut client = net::Client::connect(addr).unwrap();
                            for i in 0..REQS {
                                // 1 insert + 1 cell update per 10 detects:
                                // the sustained mutation/read mix.
                                let req = match i % 10 {
                                    0 => Request::Insert { row: donor.clone() },
                                    5 => Request::UpdateCell {
                                        row: minidb::RowId(((c * 37 + i) % rows) as u64),
                                        col: 2,
                                        value: Value::str("E15MOVED"),
                                    },
                                    _ => Request::Detect,
                                };
                                let resp = client.request(&req).unwrap();
                                assert!(
                                    !matches!(resp, api::Response::Error { .. }),
                                    "e15 request refused: {resp:?}"
                                );
                            }
                        })
                    })
                    .collect();
                for s in sessions {
                    s.join().unwrap();
                }
                let elapsed = t0.elapsed();
                server.shutdown();
                let total = (clients * REQS) as f64;
                let reqps = total / elapsed.as_secs_f64();
                let ns = elapsed.as_nanos() as f64 / total;
                println!("{backend_kind:>9} {clients:>8} {reqps:>12.0} {ns:>12.0}");
                baseline.push((rows, format!("e15_net_{backend_kind}_c{clients}"), ns));
            }
        }
        println!();
    }

    if wanted("e16") {
        println!("== E16: durability — recovery time vs WAL length, detect at 10x budget ==");
        let rows = 10_000usize;
        let w = workload(rows, 0.05, 29);
        let donor: Vec<Value> = {
            let mut r =
                w.db.table("customer")
                    .unwrap()
                    .iter()
                    .next()
                    .unwrap()
                    .1
                    .to_vec();
            r[2] = Value::str("E16CITY");
            r
        };
        let dir = std::env::temp_dir().join(format!("sdq_e16_{}", std::process::id()));
        let mk = || {
            Box::new(semandaq_core::QualityServer::new(w.db.clone(), "customer").unwrap())
                as Box<dyn QualityBackend + Send>
        };

        // (a) Recovery time as the log grows: load a mutation mix with
        // fsync off (the replay is what's being measured), reopen, and
        // time `Durable::open` — scan + decode + re-apply.
        println!(
            "{:>12} {:>12} {:>14} {:>12}",
            "wal records", "wal bytes", "recover (ms)", "ns/record"
        );
        for n in [1_000usize, 5_000, 20_000] {
            let _ = std::fs::remove_dir_all(&dir);
            let mut d = durable::Durable::open(&dir, mk()).unwrap();
            d.set_sync(false);
            for i in 0..n {
                if i % 4 == 3 {
                    d.update_cell(minidb::RowId((i % rows) as u64), 2, Value::str("E16MOVED"))
                        .unwrap();
                } else {
                    d.insert(donor.clone()).unwrap();
                }
            }
            let bytes = d.wal_bytes();
            drop(d);
            let fresh = mk();
            let t0 = Instant::now();
            let d = durable::Durable::open(&dir, fresh).unwrap();
            let t = ms(t0);
            assert_eq!(d.recovery().records_replayed, n, "every record replays");
            let ns_per_record = t * 1e6 / n as f64;
            println!("{n:>12} {bytes:>12} {t:>14.1} {ns_per_record:>12.0}");
            baseline.push((n, "e16_wal_replay".into(), ns_per_record));
        }

        // (b) Warm cached detect with the encoded table at 10x the memory
        // budget: sealed chunks live in the paged spill file and fault
        // back per morsel, so the run prices the page churn.
        let cols = w.db.table("customer").unwrap().schema().arity();
        let budget = (rows * cols * 4) / 10;
        let iters = 20u32;
        let mut report = |label: &str, budget: Option<usize>| {
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let config = semandaq_core::ServerConfig {
                mem_budget: budget,
                spill_store: budget.map(|_| {
                    durable::PagedStore::create(
                        &dir.join("spill.pages"),
                        colstore::default_chunk_rows(),
                        4,
                    )
                    .unwrap() as std::sync::Arc<dyn colstore::ChunkStore>
                }),
                ..Default::default()
            };
            let mut s = semandaq_core::QualityServer::new(w.db.clone(), "customer")
                .unwrap()
                .with_config(config);
            s.register_cfds(datagen::customer::CANONICAL_CFDS).unwrap();
            dispatch(&mut s, Request::Detect); // cold encode + first spill, untimed
            let ns = time_ns(iters, || {
                dispatch(&mut s, Request::Detect);
            });
            println!(
                "warm detect {label:>14}: {:>10.1} µs ({} chunks spilled)",
                ns / 1e3,
                s.spilled_chunks()
            );
            if budget.is_some() {
                assert!(s.spilled_chunks() > 0, "e16 budget must force spill");
            }
            baseline.push((rows, format!("e16_warm_detect_{label}"), ns));
        };
        report("resident", None);
        report("budget_10pct", Some(budget));
        let _ = std::fs::remove_dir_all(&dir);
        println!();
    }

    if !baseline.is_empty() {
        write_baseline(baseline);
    }

    if wanted("a1") {
        println!("== A1: merged tableau query vs per-pattern queries (5k rows) ==");
        println!(
            "{:>10} {:>13} {:>17}",
            "patterns", "merged (ms)", "per-pattern (ms)"
        );
        let w = workload(5_000, 0.05, 17);
        for k in [4usize, 16, 64] {
            let cfds = scaled_pattern_cfds(k);
            let mut db = w.db.clone();
            let t0 = Instant::now();
            detect_sql(&mut db, "customer", &cfds).unwrap();
            let t_m = ms(t0);
            let mut db = w.db.clone();
            let t0 = Instant::now();
            detect_sql_per_pattern(&mut db, "customer", &cfds).unwrap();
            let t_p = ms(t0);
            println!("{k:>10} {t_m:>13.1} {t_p:>17.1}");
        }
        println!();
    }

    if wanted("a2") {
        println!("== A2: repair cost model with vs without similarity (5k rows) ==");
        println!(
            "{:>12} {:>18} {:>10} {:>10} {:>8} {:>8}",
            "noise kind", "cost model", "changes", "cost", "P", "R"
        );
        for (kind, typo_fraction) in [
            ("typos only", 1.0),
            ("mixed 25/75", 0.25),
            ("swaps only", 0.0),
        ] {
            let w = datagen::dirty_customers_typed(5_000, 0.05, 31, typo_fraction);
            for (label, sim) in [("similarity (DL)", true), ("uniform 0/1", false)] {
                let dirty = w.db.table("customer").unwrap().clone();
                let mut db = w.db.clone();
                let cfg = RepairConfig {
                    use_similarity: sim,
                    ..RepairConfig::default()
                };
                let r = batch_repair(&mut db, "customer", &w.cfds, &cfg).unwrap();
                let q = score_repair(&dirty, db.table("customer").unwrap(), &w.clean);
                println!(
                    "{kind:>12} {label:>18} {:>10} {:>10.1} {:>8.3} {:>8.3}",
                    r.changes.len(),
                    r.total_cost,
                    q.precision,
                    q.recall
                );
            }
        }
        println!();
    }
}
