//! E6: static analysis cost — consistency checking vs |Σ| (consistent and
//! inconsistent chains, with and without finite domains) and implication.

use cfd::implication::implies;
use cfd::satisfiability::check_consistency;
use cfd::DomainSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minidb::Value;
use sdq_bench::{contradictory_chain, rule_chain};

fn e6_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_consistency_vs_rules");
    let dom = DomainSpec::all_infinite();
    for n in [8usize, 32, 128] {
        let consistent = rule_chain(n);
        group.bench_with_input(BenchmarkId::new("consistent_chain", n), &n, |b, _| {
            b.iter(|| check_consistency(&consistent, &dom).unwrap())
        });
        let contradictory = contradictory_chain(n);
        group.bench_with_input(BenchmarkId::new("contradictory_chain", n), &n, |b, _| {
            b.iter(|| check_consistency(&contradictory, &dom).unwrap())
        });
    }
    group.finish();
}

fn e6_finite_domains(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_finite_domains");
    // Boolean attributes make the problem NP-hard; measure the practical
    // cost of the case-analysis the solver performs.
    let cfds = cfd::parse::parse_cfds(
        "r: [F0=true] -> [B='x']\n\
         r: [F0=false] -> [B='x']\n\
         r: [F1=true] -> [C='y']\n\
         r: [F1=false] -> [C='y']\n\
         r: [F2=true] -> [D='z']\n\
         r: [F2=false] -> [D='z']",
    )
    .unwrap();
    let mut dom = DomainSpec::all_infinite();
    for f in ["F0", "F1", "F2"] {
        dom = dom.with_finite(f, vec![Value::Bool(true), Value::Bool(false)]);
    }
    group.bench_function("three_boolean_attrs", |b| {
        b.iter(|| check_consistency(&cfds, &dom).unwrap())
    });
    let phi = cfd::parse::parse_cfd("r: [E=_] -> [B='x']").unwrap();
    group.bench_function("implication_with_booleans", |b| {
        b.iter(|| implies(&cfds, &phi, &dom).unwrap())
    });
    group.finish();
}

fn e6_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_implication");
    let dom = DomainSpec::all_infinite();
    for n in [4usize, 16, 64] {
        let sigma = rule_chain(n);
        let phi = cfd::parse::parse_cfd(&format!("r: [A0='v0'] -> [A{n}='v{n}']")).unwrap();
        group.bench_with_input(BenchmarkId::new("chain_implies", n), &n, |b, _| {
            b.iter(|| {
                let r = implies(&sigma, &phi, &dom).unwrap();
                assert!(r);
                r
            })
        });
    }
    group.finish();
}

criterion_group!(benches, e6_consistency, e6_finite_domains, e6_implication);
criterion_main!(benches);
