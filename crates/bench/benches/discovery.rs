//! E7: dependency discovery cost — FDs (TANE), constant CFDs (itemset
//! mining), variable CFDs (CTane) vs data size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{generate_customers, generate_planted, CustomerConfig, GenericConfig};
use discovery::{
    discover_fds, mine_constant_cfds, mine_variable_cfds, CtaneConfig, MinerConfig, TaneConfig,
};

fn e7_fd_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_fd_discovery");
    group.sample_size(10);
    for rows in [1_000usize, 5_000, 20_000] {
        let p = generate_planted(&GenericConfig {
            rows,
            attrs: 6,
            domain: 20,
            seed: 5,
        });
        group.bench_with_input(BenchmarkId::new("tane", rows), &rows, |b, _| {
            b.iter(|| discover_fds(&p.table, &TaneConfig::default()))
        });
    }
    group.finish();
}

fn e7_cfd_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_cfd_mining");
    group.sample_size(10);
    for rows in [1_000usize, 5_000, 20_000] {
        let t = generate_customers(&CustomerConfig {
            rows,
            ..CustomerConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("constant", rows), &rows, |b, _| {
            let cfg = MinerConfig {
                min_support: rows / 20,
                max_lhs: 1,
                relation: "customer".into(),
            };
            b.iter(|| mine_constant_cfds(&t, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("variable", rows), &rows, |b, _| {
            let cfg = CtaneConfig {
                max_lhs: 1,
                max_constants: 1,
                min_support: rows / 10,
                relation: "customer".into(),
            };
            b.iter(|| mine_variable_cfds(&t, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, e7_fd_discovery, e7_cfd_mining);
criterion_main!(benches);
