//! E4/A2: repair cost vs data size and noise rate, plus the
//! similarity-term ablation ([8]'s scalability experiments; the demo's
//! "repair functionality without excess human interaction").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repair::{batch_repair, incremental_repair, RepairConfig};
use sdq_bench::workload;

fn e4_repair_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_repair_vs_rows");
    group.sample_size(10);
    for rows in [1_000usize, 5_000, 20_000] {
        let w = workload(rows, 0.05, 23);
        group.bench_with_input(BenchmarkId::new("batch", rows), &rows, |b, _| {
            b.iter_batched(
                || w.db.clone(),
                |mut db| batch_repair(&mut db, "customer", &w.cfds, &RepairConfig::default()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn e4_repair_vs_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_repair_vs_noise");
    group.sample_size(10);
    for pct in [2u32, 5, 10] {
        let w = workload(5_000, pct as f64 / 100.0, 29);
        group.bench_with_input(BenchmarkId::new("batch", pct), &pct, |b, _| {
            b.iter_batched(
                || w.db.clone(),
                |mut db| batch_repair(&mut db, "customer", &w.cfds, &RepairConfig::default()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn e4_incremental_repair(c: &mut Criterion) {
    // IncRepair over a small dirty delta against a large clean base.
    let mut group = c.benchmark_group("e4_incremental_repair");
    group.sample_size(10);
    let clean = datagen::generate_customers(&datagen::CustomerConfig {
        rows: 20_000,
        ..datagen::CustomerConfig::default()
    });
    let cfds = datagen::canonical_cfds();
    for delta in [8usize, 64, 512] {
        group.bench_with_input(BenchmarkId::new("inc", delta), &delta, |b, _| {
            b.iter_batched(
                || {
                    let mut db = minidb::Database::new();
                    db.register_table(clean.clone());
                    let donors: Vec<Vec<minidb::Value>> = clean
                        .iter()
                        .take(delta)
                        .map(|(_, r)| {
                            let mut row = r.to_vec();
                            row[2] = minidb::Value::str("XXX");
                            row
                        })
                        .collect();
                    let ids: Vec<minidb::RowId> = donors
                        .into_iter()
                        .map(|row| db.insert_row("customer", row).unwrap())
                        .collect();
                    (db, ids)
                },
                |(mut db, ids)| {
                    incremental_repair(&mut db, "customer", &cfds, &ids, &RepairConfig::default())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn a2_similarity_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_similarity_ablation");
    group.sample_size(10);
    let w = workload(5_000, 0.05, 31);
    for (label, use_similarity) in [("with_similarity", true), ("uniform_cost", false)] {
        group.bench_function(label, |b| {
            let cfg = RepairConfig {
                use_similarity,
                ..RepairConfig::default()
            };
            b.iter_batched(
                || w.db.clone(),
                |mut db| batch_repair(&mut db, "customer", &w.cfds, &cfg),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    e4_repair_scaling,
    e4_repair_vs_noise,
    e4_incremental_repair,
    a2_similarity_ablation
);
criterion_main!(benches);
