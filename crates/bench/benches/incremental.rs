//! E3: incremental vs batch detection under update batches of growing size
//! ([3] §7: incremental detection beats re-running detection for small
//! deltas; the crossover shows where batch wins again).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use detect::{detect_native, IncrementalDetector};
use minidb::Value;
use sdq_bench::workload;

fn delta_updates(w: &datagen::DirtyCustomers, delta: usize) -> Vec<(minidb::RowId, usize, Value)> {
    // Deterministic cell updates: corrupt CITY of the first `delta` rows.
    w.db.table("customer")
        .unwrap()
        .iter()
        .take(delta)
        .enumerate()
        .map(|(i, (id, _))| (id, 2usize, Value::str(format!("UPD{i}"))))
        .collect()
}

fn e3_incremental_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_incremental_vs_batch");
    group.sample_size(10);
    let rows = 20_000;
    let w = workload(rows, 0.02, 19);
    for delta in [16usize, 256, 4_096] {
        let updates = delta_updates(&w, delta);
        // Incremental: apply the delta to a prebuilt detector.
        group.bench_with_input(BenchmarkId::new("incremental", delta), &delta, |b, _| {
            let t = w.db.table("customer").unwrap();
            let det = IncrementalDetector::build(t, &w.cfds).unwrap();
            b.iter_batched(
                || (det.clone(), w.db.clone()),
                |(mut det, mut db)| {
                    for (id, col, val) in &updates {
                        let before: Vec<Value> =
                            db.table("customer").unwrap().get(*id).unwrap().to_vec();
                        db.update_cell("customer", *id, *col, val.clone()).unwrap();
                        let after: Vec<Value> =
                            db.table("customer").unwrap().get(*id).unwrap().to_vec();
                        det.update(*id, &before, &after);
                    }
                    det.total_violations()
                },
                criterion::BatchSize::LargeInput,
            )
        });
        // Batch: apply the delta then re-run full detection.
        group.bench_with_input(BenchmarkId::new("batch_rerun", delta), &delta, |b, _| {
            b.iter_batched(
                || w.db.clone(),
                |mut db| {
                    for (id, col, val) in &updates {
                        db.update_cell("customer", *id, *col, val.clone()).unwrap();
                    }
                    detect_native(db.table("customer").unwrap(), &w.cfds)
                        .unwrap()
                        .len()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, e3_incremental_vs_batch);
criterion_main!(benches);
