//! Substrate microbenchmarks: the SQL operations the detection queries
//! lean on — filtered scans, group-by with COUNT(DISTINCT), hash
//! self-joins, and tableau-style wildcard joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdq_bench::workload;

fn engine_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sqlengine");
    group.sample_size(10);
    for rows in [5_000usize, 20_000] {
        let w = workload(rows, 0.05, 37);
        let db = w.db;
        group.bench_with_input(BenchmarkId::new("filtered_scan", rows), &rows, |b, _| {
            b.iter(|| {
                db.query("SELECT name FROM customer WHERE cnt = 'UK' AND city <> 'EDI'")
                    .unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("group_count_distinct", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    db.query(
                        "SELECT cnt, zip, COUNT(DISTINCT city) FROM customer \
                         GROUP BY cnt, zip HAVING COUNT(DISTINCT city) > 1",
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("hash_self_join", rows), &rows, |b, _| {
            b.iter(|| {
                db.query(
                    "SELECT a.__rowid FROM customer a, customer b \
                     WHERE a.zip = b.zip AND a.city <> b.city",
                )
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("order_limit", rows), &rows, |b, _| {
            b.iter(|| {
                db.query("SELECT name, city FROM customer ORDER BY name LIMIT 50")
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine_ops);
criterion_main!(benches);
