//! F3/F4-adjacent: cost of the auditor (classification, report, quality
//! map) and the explorer's drill-down over a detection result.

use audit::{quality_map, quality_report};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use detect::detect_native;
use explore::NavigationSession;
use sdq_bench::workload;

fn audit_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit");
    group.sample_size(10);
    for rows in [5_000usize, 20_000] {
        let w = workload(rows, 0.05, 41);
        let t = w.db.table("customer").unwrap();
        let report = detect_native(t, &w.cfds).unwrap();
        group.bench_with_input(BenchmarkId::new("quality_report", rows), &rows, |b, _| {
            b.iter(|| quality_report(t, &w.cfds, &report).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("quality_map", rows), &rows, |b, _| {
            b.iter(|| quality_map(t, &report))
        });
    }
    group.finish();
}

fn explore_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore");
    group.sample_size(10);
    let w = workload(10_000, 0.05, 43);
    let t = w.db.table("customer").unwrap();
    let report = detect_native(t, &w.cfds).unwrap();
    group.bench_function("full_drilldown", |b| {
        b.iter(|| {
            let nav = NavigationSession::new(t, &w.cfds, &report).unwrap();
            let fds = nav.fds();
            let mut touched = 0usize;
            for fd in &fds {
                for p in nav.patterns(fd.idx) {
                    let lhs = nav.lhs_matches(p.cfd_idx);
                    if let Some(e) = lhs.first() {
                        touched += nav.rhs_values(p.cfd_idx, &e.key).len();
                    }
                }
            }
            touched
        })
    });
    group.finish();
}

criterion_group!(benches, audit_costs, explore_costs);
criterion_main!(benches);
