//! Columnar vs sql/native/parallel detection on the customer workload, plus
//! the cost of the encode itself and the snapshot-reuse payoff.

use colstore::{detect_columnar, detect_on_snapshot, Snapshot};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use detect::{detect_native, detect_parallel, detect_sql};
use sdq_bench::workload;

fn engines_vs_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("colstore_engines_vs_rows");
    group.sample_size(10);
    for rows in [1_000usize, 10_000, 100_000] {
        let w = workload(rows, 0.05, 11);
        let t = w.db.table("customer").unwrap();
        group.bench_with_input(BenchmarkId::new("native", rows), &rows, |b, _| {
            b.iter(|| detect_native(t, &w.cfds).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel4", rows), &rows, |b, _| {
            b.iter(|| detect_parallel(t, &w.cfds, 4).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("columnar", rows), &rows, |b, _| {
            b.iter(|| detect_columnar(t, &w.cfds).unwrap())
        });
        // SQL only at the smaller sizes: it is orders of magnitude slower.
        if rows <= 10_000 {
            group.bench_with_input(BenchmarkId::new("sql", rows), &rows, |b, _| {
                b.iter_batched(
                    || w.db.clone(),
                    |mut db| detect_sql(&mut db, "customer", &w.cfds).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

fn snapshot_encode_and_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("colstore_snapshot");
    group.sample_size(10);
    let w = workload(100_000, 0.05, 11);
    let t = w.db.table("customer").unwrap();
    group.bench_function("encode_100k", |b| b.iter(|| Snapshot::of(t)));
    let snap = Snapshot::of(t);
    group.bench_function("detect_on_snapshot_100k", |b| {
        b.iter(|| detect_on_snapshot(&snap, &w.cfds).unwrap())
    });
    group.finish();
}

criterion_group!(benches, engines_vs_rows, snapshot_encode_and_reuse);
criterion_main!(benches);
