//! E1/E2/A1: detection cost vs data size, vs tableau size, and merged vs
//! per-pattern SQL (paper claim: "efficient SQL-based techniques", [3]'s
//! scalability experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use detect::{detect_native, detect_parallel, detect_sql, detect_sql_per_pattern};
use sdq_bench::{scaled_pattern_cfds, workload};

fn e1_detection_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_detection_vs_rows");
    group.sample_size(10);
    for rows in [1_000usize, 5_000, 20_000] {
        let w = workload(rows, 0.05, 11);
        group.bench_with_input(BenchmarkId::new("sql", rows), &rows, |b, _| {
            b.iter_batched(
                || w.db.clone(),
                |mut db| detect_sql(&mut db, "customer", &w.cfds).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("native", rows), &rows, |b, _| {
            let t = w.db.table("customer").unwrap();
            b.iter(|| detect_native(t, &w.cfds).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel4", rows), &rows, |b, _| {
            let t = w.db.table("customer").unwrap();
            b.iter(|| detect_parallel(t, &w.cfds, 4).unwrap())
        });
    }
    group.finish();
}

fn e2_detection_vs_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_detection_vs_patterns");
    group.sample_size(10);
    let w = workload(10_000, 0.05, 13);
    for k in [1usize, 4, 16, 64] {
        let cfds = scaled_pattern_cfds(k);
        group.bench_with_input(BenchmarkId::new("native", k), &k, |b, _| {
            let t = w.db.table("customer").unwrap();
            b.iter(|| detect_native(t, &cfds).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sql_merged", k), &k, |b, _| {
            b.iter_batched(
                || w.db.clone(),
                |mut db| detect_sql(&mut db, "customer", &cfds).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn a1_merged_vs_per_pattern(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_merged_vs_per_pattern");
    group.sample_size(10);
    let w = workload(5_000, 0.05, 17);
    for k in [4usize, 16] {
        let cfds = scaled_pattern_cfds(k);
        group.bench_with_input(BenchmarkId::new("merged", k), &k, |b, _| {
            b.iter_batched(
                || w.db.clone(),
                |mut db| detect_sql(&mut db, "customer", &cfds).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("per_pattern", k), &k, |b, _| {
            b.iter_batched(
                || w.db.clone(),
                |mut db| detect_sql_per_pattern(&mut db, "customer", &cfds).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    e1_detection_scaling,
    e2_detection_vs_patterns,
    a1_merged_vs_per_pattern
);
criterion_main!(benches);
