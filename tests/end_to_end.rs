//! End-to-end pipeline tests: generate → dirty → detect → audit → repair →
//! verify, across scales and noise rates — the full Semandaq loop.

use semandaq::audit::CleanClass;
use semandaq::datagen::dirty_customers;
use semandaq::repair::score_repair;
use semandaq::system::{DetectorKind, QualityServer, ServerConfig};

fn pipeline(rows: usize, noise: f64, seed: u64, detector: DetectorKind) {
    let w = dirty_customers(rows, noise, seed);
    let dirty_table = w.db.table("customer").unwrap().clone();
    let mut server = QualityServer::new(w.db, "customer")
        .unwrap()
        .with_config(ServerConfig {
            detector,
            ..ServerConfig::default()
        });
    server
        .register_cfds(semandaq::datagen::customer::CANONICAL_CFDS)
        .unwrap();

    // Detection finds something iff noise was injected.
    let report = server.detect().unwrap();
    if noise > 0.0 {
        assert!(!report.is_empty(), "noise must produce violations");
    } else {
        assert!(report.is_empty());
    }

    // Audit is internally consistent.
    let audit = server.audit().unwrap();
    assert_eq!(audit.tuples, rows);
    assert_eq!(audit.tuple_classes.iter().sum::<usize>(), rows);

    // Repair drives violations to zero.
    let result = server.repair().unwrap();
    assert!(
        result.residual.is_empty(),
        "repair must converge: {} residuals",
        result.residual.len()
    );
    assert!(server.detect().unwrap().is_empty());

    // Quality against ground truth. Recall over *all* injected errors is
    // bounded by detectability: an error landing in a singleton LHS-group
    // violates nothing and no CFD-based system can see it. Small tables
    // (rows ≪ #zip-groups) therefore cap out low; the dedicated 1000-row
    // quality test asserts the paper-shape numbers.
    if noise > 0.0 {
        let repaired = server.table().unwrap().clone();
        let q = score_repair(&dirty_table, &repaired, &w.clean);
        assert!(q.error_cells > 0);
        let floor = if rows >= 1_000 { 0.4 } else { 0.2 };
        assert!(
            q.recall_loc >= floor,
            "located fraction {} below {floor} at rows={rows}",
            q.recall_loc
        );
    }
}

#[test]
fn small_sql_pipeline() {
    pipeline(100, 0.05, 1, DetectorKind::Sql);
}

#[test]
fn medium_native_pipeline() {
    pipeline(1_000, 0.05, 2, DetectorKind::Native);
}

#[test]
fn parallel_pipeline() {
    pipeline(500, 0.08, 3, DetectorKind::Parallel { threads: 4 });
}

#[test]
fn clean_data_pipeline() {
    pipeline(300, 0.0, 4, DetectorKind::Sql);
}

#[test]
fn high_noise_pipeline_still_converges() {
    pipeline(400, 0.15, 5, DetectorKind::Native);
}

#[test]
fn audit_classes_shift_after_repair() {
    let w = dirty_customers(300, 0.06, 6);
    let mut server = QualityServer::new(w.db, "customer").unwrap();
    server
        .register_cfds(semandaq::datagen::customer::CANONICAL_CFDS)
        .unwrap();
    let before = server.audit().unwrap();
    assert!(before.tuple_classes[3] > 0, "dirty tuples before repair");
    server.repair().unwrap();
    let after = server.audit().unwrap();
    assert_eq!(after.tuple_classes[3], 0, "no dirty tuples after repair");
    // Everyone is at least probably clean; most are verified (CC rules
    // apply to every tuple).
    assert!(after.tuple_classes[0] > before.tuple_classes[0]);
}

#[test]
fn quality_map_reflects_repair() {
    let w = dirty_customers(200, 0.08, 7);
    let mut server = QualityServer::new(w.db, "customer").unwrap();
    server
        .register_cfds(semandaq::datagen::customer::CANONICAL_CFDS)
        .unwrap();
    let before = server.map().unwrap();
    assert!(before.max_vio > 0);
    server.repair().unwrap();
    let after = server.map().unwrap();
    assert_eq!(after.max_vio, 0);
    assert!(after.rows.iter().all(|r| r.vio == 0));
}

#[test]
fn tuple_classification_tracks_membership() {
    let w = dirty_customers(250, 0.05, 8);
    let mut server = QualityServer::new(w.db, "customer").unwrap();
    server
        .register_cfds(semandaq::datagen::customer::CANONICAL_CFDS)
        .unwrap();
    let report = server.detect().unwrap();
    let audit = server.audit().unwrap();
    let _ = audit;
    let classification =
        semandaq::audit::classify(server.table().unwrap(), server.engine().cfds(), &report)
            .unwrap();
    // Every tuple with vio > 0 is not verified/probably clean.
    for (row, class) in &classification.tuples {
        let vio = report.vio_of(*row);
        if vio > 0 {
            assert!(
                matches!(class, CleanClass::ArguablyClean | CleanClass::Dirty),
                "row {row:?} with vio={vio} classed {class:?}"
            );
        } else {
            assert!(
                matches!(class, CleanClass::VerifiedClean | CleanClass::ProbablyClean),
                "clean row {row:?} classed {class:?}"
            );
        }
    }
}
