//! Integration tests of the SQL substrate through realistic data-quality
//! queries (the kinds the detection SQL generator emits) plus a
//! property-based check of GROUP BY against a hand-rolled reference.

mod common;

use common::arb_table;
use proptest::prelude::*;
use semandaq::datagen::dirty_customers;
use semandaq::minidb::{Database, Value};

fn customers(rows: usize, seed: u64) -> Database {
    dirty_customers(rows, 0.05, seed).db
}

#[test]
fn fd_violation_query_self_join() {
    let db = customers(300, 41);
    // The textbook FD-violation pair query.
    let pairs = db
        .query(
            "SELECT a.__rowid, b.__rowid FROM customer a, customer b \
             WHERE a.cnt = b.cnt AND a.zip = b.zip AND a.city <> b.city",
        )
        .unwrap();
    // And the group-by formulation; each violating group of size g with k
    // distinct cities contributes pairs — just cross-check nonemptiness
    // agreement and group membership.
    let groups = db
        .query(
            "SELECT cnt, zip FROM customer \
             GROUP BY cnt, zip HAVING COUNT(DISTINCT city) > 1",
        )
        .unwrap();
    assert_eq!(pairs.is_empty(), groups.is_empty());
    if !groups.is_empty() {
        // Every pair's (cnt, zip) must be one of the groups.
        let keys: std::collections::HashSet<(String, String)> = groups
            .rows
            .iter()
            .map(|r| (r[0].render(), r[1].render()))
            .collect();
        let lookup = db.query("SELECT __rowid, cnt, zip FROM customer").unwrap();
        let by_rowid: std::collections::HashMap<i64, (String, String)> = lookup
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), (r[1].render(), r[2].render())))
            .collect();
        for p in &pairs.rows {
            let key = &by_rowid[&p[0].as_int().unwrap()];
            assert!(keys.contains(key));
        }
    }
}

#[test]
fn aggregate_expressions_over_customers() {
    let db = customers(500, 42);
    let r = db
        .query(
            "SELECT cnt, COUNT(*) AS n, COUNT(DISTINCT city) AS cities \
             FROM customer GROUP BY cnt ORDER BY n DESC LIMIT 3",
        )
        .unwrap();
    assert!(r.len() <= 3);
    let total: i64 = db
        .query("SELECT COUNT(*) AS n FROM customer")
        .unwrap()
        .get(0, "n")
        .unwrap()
        .as_int()
        .unwrap();
    assert_eq!(total, 500);
    // Sum of per-country counts for the full query equals the total.
    let all = db
        .query("SELECT cnt, COUNT(*) AS n FROM customer GROUP BY cnt")
        .unwrap();
    let sum: i64 = all.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(sum, total);
}

#[test]
fn case_like_between_in_queries() {
    let db = customers(200, 43);
    let r = db
        .query(
            "SELECT name, CASE WHEN cnt = 'UK' THEN 'domestic' ELSE 'foreign' END AS kind \
             FROM customer WHERE name LIKE 'm%' ORDER BY name",
        )
        .unwrap();
    for row in &r.rows {
        assert!(row[0].render().starts_with('m'));
        let kind = row[1].render();
        assert!(kind == "domestic" || kind == "foreign");
    }
    let r = db
        .query("SELECT COUNT(*) AS n FROM customer WHERE cnt IN ('UK', 'NL')")
        .unwrap();
    let n_in = r.get(0, "n").unwrap().as_int().unwrap();
    let r = db
        .query("SELECT COUNT(*) AS n FROM customer WHERE cnt NOT IN ('UK', 'NL')")
        .unwrap();
    let n_out = r.get(0, "n").unwrap().as_int().unwrap();
    // NULL-free column: IN + NOT IN partition the table.
    assert_eq!(n_in + n_out, 200);
}

#[test]
fn update_delete_respect_predicates() {
    let mut db = customers(150, 44);
    let uk_before = db
        .query("SELECT COUNT(*) AS n FROM customer WHERE cnt = 'UK'")
        .unwrap()
        .get(0, "n")
        .unwrap()
        .as_int()
        .unwrap();
    db.execute("UPDATE customer SET city = UPPER(city) WHERE cnt = 'UK'")
        .unwrap();
    let uk_after = db
        .query("SELECT COUNT(*) AS n FROM customer WHERE cnt = 'UK'")
        .unwrap()
        .get(0, "n")
        .unwrap()
        .as_int()
        .unwrap();
    assert_eq!(uk_before, uk_after, "update must not change membership");
    let n = db.execute("DELETE FROM customer WHERE cnt = 'UK'").unwrap();
    assert_eq!(
        n,
        semandaq::minidb::ExecOutcome::Affected(uk_after as usize)
    );
}

#[test]
fn csv_roundtrip_through_engine() {
    let db = customers(80, 45);
    let csv = semandaq::minidb::csv::table_to_csv(db.table("customer").unwrap());
    let schema = semandaq::datagen::customer_schema();
    let t2 = semandaq::minidb::csv::table_from_csv("customer2", schema, &csv).unwrap();
    assert_eq!(t2.len(), 80);
    let mut db2 = Database::new();
    db2.register_table(t2);
    let a = db
        .query("SELECT cnt, COUNT(*) FROM customer GROUP BY cnt")
        .unwrap()
        .sorted_rows();
    let b = db2
        .query("SELECT cnt, COUNT(*) FROM customer2 GROUP BY cnt")
        .unwrap()
        .sorted_rows();
    assert_eq!(a, b);
}

/// Reference GROUP BY COUNT(DISTINCT) used by the property test.
fn reference_group_count_distinct(
    table: &semandaq::minidb::Table,
    key_cols: &[usize],
    agg_col: usize,
) -> std::collections::HashMap<Vec<Value>, i64> {
    let mut out: std::collections::HashMap<Vec<Value>, std::collections::HashSet<Value>> =
        Default::default();
    for (_, row) in table.iter() {
        let key: Vec<Value> = key_cols.iter().map(|&c| row[c].clone()).collect();
        let entry = out.entry(key).or_default();
        if !row[agg_col].is_null() {
            entry.insert(row[agg_col].clone());
        }
    }
    out.into_iter().map(|(k, s)| (k, s.len() as i64)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn group_by_count_distinct_matches_reference(table in arb_table(40)) {
        let reference = reference_group_count_distinct(&table, &[0, 1], 2);
        let mut db = Database::new();
        db.register_table(table);
        let r = db
            .query("SELECT a, b, COUNT(DISTINCT c) AS n FROM r GROUP BY a, b")
            .unwrap();
        prop_assert_eq!(r.len(), reference.len());
        for row in &r.rows {
            let key = vec![row[0].clone(), row[1].clone()];
            let expect = reference.get(&key).copied();
            prop_assert_eq!(expect, row[2].as_int(), "group {:?}", key);
        }
    }

    #[test]
    fn distinct_equals_reference_dedup(table in arb_table(40)) {
        let expected: std::collections::HashSet<Vec<Value>> = table
            .iter()
            .map(|(_, r)| vec![r[0].clone(), r[2].clone()])
            .collect();
        let mut db = Database::new();
        db.register_table(table);
        let r = db.query("SELECT DISTINCT a, c FROM r").unwrap();
        prop_assert_eq!(r.len(), expected.len());
        for row in &r.rows {
            prop_assert!(expected.contains(row));
        }
    }

    #[test]
    fn where_partition_is_total_modulo_nulls(table in arb_table(40)) {
        let mut db = Database::new();
        let total = table.len() as i64;
        db.register_table(table);
        let count = |sql: &str| {
            db.query(sql).unwrap().rows[0][0].as_int().unwrap()
        };
        let eq = count("SELECT COUNT(*) FROM r WHERE a = 'a0'");
        let ne = count("SELECT COUNT(*) FROM r WHERE a <> 'a0'");
        let null = count("SELECT COUNT(*) FROM r WHERE a IS NULL");
        prop_assert_eq!(eq + ne + null, total);
    }
}
