//! Discovery round-trips: rules mined from data hold on that data; planted
//! dependencies are recovered; discovered rules can drive the cleaning of a
//! dirty sibling instance.

use semandaq::cfd::DomainSpec;
use semandaq::datagen::{
    dirty_customers, generate_customers, generate_planted, CustomerConfig, GenericConfig,
};
use semandaq::detect::detect_native;
use semandaq::discovery::{
    discover_fds, mine_constant_cfds, mine_variable_cfds, validate_rules, CtaneConfig, MinerConfig,
    TaneConfig,
};
use semandaq::repair::{batch_repair, RepairConfig};

#[test]
fn mined_rules_hold_on_their_source() {
    let t = generate_customers(&CustomerConfig {
        rows: 800,
        ..CustomerConfig::default()
    });
    let consts = mine_constant_cfds(
        &t,
        &MinerConfig {
            min_support: 40,
            max_lhs: 2,
            relation: "customer".into(),
        },
    );
    let vars = mine_variable_cfds(
        &t,
        &CtaneConfig {
            max_lhs: 2,
            max_constants: 1,
            min_support: 60,
            relation: "customer".into(),
        },
    );
    let mut rules: Vec<semandaq::cfd::Cfd> = consts.into_iter().map(|d| d.cfd).collect();
    rules.extend(vars.into_iter().map(|d| d.cfd));
    assert!(!rules.is_empty());
    let report = detect_native(&t, &rules).unwrap();
    assert!(
        report.is_empty(),
        "mined rules must hold on their source: {} violations",
        report.len()
    );
}

#[test]
fn planted_dependencies_recovered_across_sizes() {
    for (rows, seed) in [(400usize, 1u64), (1500, 2), (4000, 3)] {
        let p = generate_planted(&GenericConfig {
            rows,
            attrs: 6,
            domain: 15,
            seed,
        });
        let fds = discover_fds(&p.table, &TaneConfig::default());
        for fd in &p.fds {
            assert!(
                fds.iter().any(|d| d.g3 == 0.0
                    && d.fd.rhs.eq_ignore_ascii_case(&fd.rhs)
                    && d.fd.lhs.len() <= fd.lhs.len()),
                "rows={rows}: planted {fd} not recovered"
            );
        }
        let consts = mine_constant_cfds(
            &p.table,
            &MinerConfig {
                min_support: 3,
                max_lhs: 1,
                relation: "planted".into(),
            },
        );
        let target = &p.constant_cfds[0];
        assert!(
            consts.iter().any(|d| d.cfd.rhs == target.rhs
                && d.cfd.lhs == target.lhs
                && d.cfd.rhs_pat == target.rhs_pat),
            "rows={rows}: planted constant CFD not recovered"
        );
    }
}

#[test]
fn discovered_rules_clean_a_dirty_sibling() {
    // Mine from a clean sample, clean a dirty instance drawn from the same
    // generator (different seed noise), verify convergence and that the
    // repairs move values toward the clean ground truth.
    let reference = generate_customers(&CustomerConfig {
        rows: 1_500,
        ..CustomerConfig::default()
    });
    let consts = mine_constant_cfds(
        &reference,
        &MinerConfig {
            min_support: 80,
            max_lhs: 1,
            relation: "customer".into(),
        },
    );
    let vars = mine_variable_cfds(
        &reference,
        &CtaneConfig {
            max_lhs: 2,
            max_constants: 1,
            min_support: 120,
            relation: "customer".into(),
        },
    );
    let mut rules: Vec<semandaq::cfd::Cfd> = consts.into_iter().map(|d| d.cfd).collect();
    rules.extend(vars.into_iter().map(|d| d.cfd));
    assert!(
        validate_rules(&rules, &DomainSpec::all_infinite())
            .unwrap()
            .consistent
    );

    let w = dirty_customers(600, 0.04, 777);
    let mut db = w.db;
    let before = detect_native(db.table("customer").unwrap(), &rules)
        .unwrap()
        .len();
    assert!(before > 0, "dirty instance must violate discovered rules");
    let result = batch_repair(&mut db, "customer", &rules, &RepairConfig::default()).unwrap();
    assert!(
        result.residual.is_empty(),
        "repair under discovered rules must converge ({} residual)",
        result.residual.len()
    );
}

#[test]
fn approximate_fds_require_threshold() {
    // The dirty instance breaks exact FDs; with a g3 budget they reappear.
    let w = dirty_customers(500, 0.03, 31);
    let t = w.db.table("customer").unwrap();
    let exact = discover_fds(t, &TaneConfig::default());
    assert!(
        !exact
            .iter()
            .any(|d| d.fd.rhs == "CNT" && d.fd.lhs == vec!["CC".to_string()]),
        "noise breaks CC → CNT exactly"
    );
    let approx = discover_fds(
        t,
        &TaneConfig {
            g3_threshold: 0.10,
            ..TaneConfig::default()
        },
    );
    let hit = approx
        .iter()
        .find(|d| d.fd.rhs == "CNT" && d.fd.lhs == vec!["CC".to_string()])
        .expect("approximate CC → CNT under threshold");
    assert!(hit.g3 > 0.0);
}

#[test]
fn discovery_then_server_roundtrip() {
    use semandaq::system::QualityServer;
    let clean = generate_customers(&CustomerConfig {
        rows: 700,
        ..CustomerConfig::default()
    });
    let mut db = semandaq::minidb::Database::new();
    db.register_table(clean);
    let mut server = QualityServer::new(db, "customer").unwrap();
    let n = server
        .discover_constraints(
            &MinerConfig {
                min_support: 50,
                max_lhs: 1,
                relation: "customer".into(),
            },
            &CtaneConfig {
                max_lhs: 1,
                max_constants: 0,
                min_support: 80,
                relation: "customer".into(),
            },
        )
        .unwrap();
    assert!(n >= 4, "should discover several rules, got {n}");
    assert!(server.detect().unwrap().is_empty());
}
