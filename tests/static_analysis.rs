//! Properties of the constraint engine's static analyses: consistency,
//! implication and minimal covers hang together the way the theory says.

mod common;

use common::{arb_cfds, cfd_pool};
use proptest::prelude::*;
use semandaq::cfd::cover::{minimal_cover, subsumes};
use semandaq::cfd::implication::implies;
use semandaq::cfd::satisfiability::check_consistency;
use semandaq::cfd::{Consistency, DomainSpec};
use semandaq::detect::detect_native;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sigma_implies_its_own_members(cfds in arb_cfds()) {
        let dom = DomainSpec::all_infinite();
        for phi in &cfds {
            prop_assert!(
                implies(&cfds, phi, &dom).unwrap(),
                "Σ must imply its own member {phi}"
            );
        }
    }

    #[test]
    fn minimal_cover_is_equivalent_to_sigma(cfds in arb_cfds()) {
        let dom = DomainSpec::all_infinite();
        let cover = minimal_cover(&cfds, &dom).unwrap();
        prop_assert!(cover.len() <= cfds.len());
        // Cover ⊨ every original CFD and vice versa.
        for phi in &cfds {
            prop_assert!(implies(&cover, phi, &dom).unwrap(), "cover must imply {phi}");
        }
        for phi in &cover {
            prop_assert!(implies(&cfds, phi, &dom).unwrap(), "Σ must imply cover member {phi}");
        }
    }

    #[test]
    fn subsumption_implies_implication(
        i in 0usize..9,
        j in 0usize..9,
    ) {
        let pool = cfd_pool();
        let (a, b) = (&pool[i], &pool[j]);
        if subsumes(a, b) {
            prop_assert!(
                implies(std::slice::from_ref(a), b, &DomainSpec::all_infinite()).unwrap(),
                "{a} subsumes {b} but does not imply it"
            );
        }
    }

    #[test]
    fn consistency_witness_actually_satisfies(cfds in arb_cfds()) {
        let dom = DomainSpec::all_infinite();
        match check_consistency(&cfds, &dom).unwrap() {
            Consistency::Inconsistent => {}
            Consistency::Consistent(witness) => {
                // Build a one-tuple instance from the witness and verify
                // with the detector — the two notions of satisfaction must
                // coincide.
                let attrs: Vec<&str> = witness.iter().map(|(a, _)| a.as_str()).collect();
                let schema = semandaq::minidb::Schema::of_strings(&attrs);
                let mut t = semandaq::minidb::Table::new("r", schema);
                t.insert(witness.iter().map(|(_, v)| v.clone()).collect()).unwrap();
                let report = detect_native(&t, &cfds).unwrap();
                prop_assert!(
                    report.is_empty(),
                    "witness violates Σ: {:?}",
                    report.violations
                );
            }
        }
    }

    #[test]
    fn inconsistent_sets_have_no_single_tuple_model(cfds in arb_cfds()) {
        // If the checker says inconsistent, batch repair of any nonempty
        // instance can never reach zero violations — spot-check with a
        // random-ish instance of constants from the pool.
        let dom = DomainSpec::all_infinite();
        if check_consistency(&cfds, &dom).unwrap().is_consistent() {
            return Ok(());
        }
        // (The fixed pool is consistent, so this branch exercises only
        // crafted sets — see the deterministic test below.)
    }
}

#[test]
fn classic_inconsistency_examples() {
    let dom = DomainSpec::all_infinite();
    // [3]'s canonical example: two wildcard rules forcing different
    // constants on the same attribute.
    let sigma = semandaq::cfd::parse::parse_cfds(
        "r: [A=_] -> [B='b1']\n\
         r: [A=_] -> [B='b2']",
    )
    .unwrap();
    assert!(!check_consistency(&sigma, &dom).unwrap().is_consistent());
    // Implication from an inconsistent set is vacuous.
    let anything = semandaq::cfd::parse::parse_cfd("r: [C=_] -> [D='x']").unwrap();
    assert!(implies(&sigma, &anything, &dom).unwrap());
}

#[test]
fn finite_domain_changes_both_analyses() {
    use semandaq::minidb::Value;
    let dom_inf = DomainSpec::all_infinite();
    let dom_bool =
        DomainSpec::all_infinite().with_finite("F", vec![Value::Bool(true), Value::Bool(false)]);
    let sigma = semandaq::cfd::parse::parse_cfds(
        "r: [F=true] -> [B='x']\n\
         r: [F=false] -> [B='x']",
    )
    .unwrap();
    let phi = semandaq::cfd::parse::parse_cfd("r: [C=_] -> [B='x']").unwrap();
    assert!(!implies(&sigma, &phi, &dom_inf).unwrap());
    assert!(implies(&sigma, &phi, &dom_bool).unwrap());

    // Consistency example: a third rule conflicting on B.
    let sigma2 = semandaq::cfd::parse::parse_cfds(
        "r: [F=true] -> [B='x']\n\
         r: [F=false] -> [B='y']\n\
         r: [C=_] -> [B='z']",
    )
    .unwrap();
    assert!(check_consistency(&sigma2, &dom_inf)
        .unwrap()
        .is_consistent());
    assert!(!check_consistency(&sigma2, &dom_bool)
        .unwrap()
        .is_consistent());
}

#[test]
fn canonical_cfd_set_passes_static_analysis() {
    let cfds = semandaq::datagen::canonical_cfds();
    let dom = DomainSpec::all_infinite();
    assert!(check_consistency(&cfds, &dom).unwrap().is_consistent());
    // φ4 ([CC='44'] -> [CNT='UK']) implies its own variable weakening.
    let weaker = semandaq::cfd::parse::parse_cfd("customer: [CC='44'] -> [CNT=_]").unwrap();
    assert!(implies(&cfds, &weaker, &dom).unwrap());
    // The cover keeps φ3 and drops nothing essential: every original CFD
    // still follows.
    let cover = minimal_cover(&cfds, &dom).unwrap();
    for phi in &cfds {
        assert!(implies(&cover, phi, &dom).unwrap());
    }
}
