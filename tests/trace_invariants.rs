//! Tracing invariants: one traced request must come back as one coherent
//! span tree — balanced guards, parents that exist, child intervals inside
//! the root's — even when the work fanned out across morsel workers and
//! shard threads. The trace layer (enable flag, flight recorder) is
//! process-global, so every test serializes on one mutex and restores the
//! disabled default before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};

use semandaq::api::{dispatch_line, QualityBackend, Request, Response};
use semandaq::cluster::{HashRouter, ShardedQualityServer};
use semandaq::colstore::Snapshot;
use semandaq::datagen::{customer::CANONICAL_CFDS, dirty_customers};
use semandaq::obs::{trace, TraceReport};
use semandaq::system::{DataMonitor, MonitorMode, QualityServer, ServerConfig};

const ROWS: usize = 400;
const SEED: u64 = 777;

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Tracing-on scope: clears the ring, enables tracing, and on drop
/// disables it and clears the ring again so sibling tests (and the rest
/// of the suite) observe the disabled default.
struct TraceOn;

fn trace_on() -> TraceOn {
    trace::clear();
    trace::set_enabled(true);
    TraceOn
}

impl Drop for TraceOn {
    fn drop(&mut self) {
        trace::set_enabled(false);
        trace::clear();
    }
}

/// Structural invariants every completed trace must satisfy: exactly one
/// root, every parent id resolves, every span is balanced (end ≥ start)
/// and its interval sits inside the root's.
fn assert_coherent_tree(report: &TraceReport, label: &str) {
    let root = report.root().unwrap_or_else(|| panic!("{label}: no root"));
    assert_eq!(root.parent, 0, "{label}: root has no parent");
    let roots = report.spans.iter().filter(|s| s.parent == 0).count();
    assert_eq!(roots, 1, "{label}: exactly one root span");
    let ids: Vec<u64> = report.spans.iter().map(|s| s.id).collect();
    for s in &report.spans {
        assert!(s.end_us >= s.start_us, "{label}: balanced span {}", s.name);
        if s.parent != 0 {
            assert!(
                ids.contains(&s.parent),
                "{label}: span '{}' has a dangling parent {}",
                s.name,
                s.parent
            );
            // Wall-clock containment in the root: child spans — including
            // ones recorded on worker threads — cannot start before the
            // request or outlive it.
            assert!(
                s.start_us >= root.start_us && s.end_us <= root.end_us,
                "{label}: '{}' [{}, {}] escapes root [{}, {}]",
                s.name,
                s.start_us,
                s.end_us,
                root.start_us,
                root.end_us
            );
        }
    }
}

/// The acceptance scenario: one Detect on a 4-shard cluster produces a
/// single span tree rooted at `api.detect`, with the scatter, one export
/// span per shard (on pool threads), and per-CFD detect spans carrying
/// memo attributes — all correctly parented across the thread boundary.
#[test]
fn cluster_detect_is_one_tree_across_shard_threads() {
    let _g = lock();
    let _t = trace_on();
    let d = dirty_customers(ROWS, 0.05, SEED);
    let mut c = ShardedQualityServer::partition(
        d.db.table("customer").unwrap(),
        4,
        Box::new(HashRouter::new(vec![1])),
    )
    .unwrap()
    // Force the pool even on a single-core machine: the point of the
    // test is the cross-thread propagation seam.
    .with_detect_threads(4);
    dispatch_line(
        &mut c,
        &Request::RegisterCfds {
            text: CANONICAL_CFDS.to_string(),
        }
        .encode(),
    );
    dispatch_line(&mut c, &Request::Detect.encode());

    let report = trace::last_trace().expect("detect recorded a trace");
    assert_eq!(report.name, "api.detect");
    assert_coherent_tree(&report, "cluster detect");
    let root = report.root().unwrap();

    let scatter = report
        .spans
        .iter()
        .find(|s| s.name == "cluster.scatter")
        .expect("scatter span present");
    assert_eq!(scatter.parent, root.id, "scatter nests under the request");

    let exports: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.name == "shard.export")
        .collect();
    assert_eq!(exports.len(), 4, "one export span per shard");
    let mut shards: Vec<String> = exports
        .iter()
        .map(|s| s.attr("shard").expect("shard attr").to_string())
        .collect();
    shards.sort();
    assert_eq!(shards, ["0", "1", "2", "3"], "every shard tagged once");
    for e in &exports {
        assert_eq!(
            e.parent, scatter.id,
            "export spans parent under the scatter across the pool boundary"
        );
    }
    // The pool ran on spawned workers: at least one export span carries a
    // non-dispatcher thread ordinal (the dispatcher records thread 0).
    assert!(
        exports.iter().any(|s| s.thread != root.thread),
        "exports ran on pool worker threads"
    );

    let cfd_spans: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.name == "detect.cfd")
        .collect();
    assert_eq!(
        cfd_spans.len(),
        4 * d.cfds.len(),
        "each shard traces each CFD"
    );
    for s in &cfd_spans {
        assert_eq!(
            s.attr("memo").expect("memo attr"),
            "recompute",
            "cold detect recomputes every fragment"
        );
        assert!(
            exports.iter().any(|e| e.id == s.parent),
            "per-CFD spans nest under their shard's export span"
        );
    }
    assert!(
        report.spans.iter().any(|s| s.name == "cluster.merge"),
        "the gather is traced too"
    );

    // A second detect rides the memo — same tree shape, memo=hit.
    dispatch_line(&mut c, &Request::Detect.encode());
    let warm = trace::last_trace().unwrap();
    assert_coherent_tree(&warm, "warm cluster detect");
    assert!(warm
        .spans
        .iter()
        .filter(|s| s.name == "detect.cfd")
        .all(|s| s.attr("memo") == Some("hit")));
}

/// The single-server columnar path: per-CFD spans carry the grouping-path
/// attribute (`dense`/`hashed`/`wide`/`constant`) the detector chose, and
/// the chunked fan-out's morsel spans nest under the request from worker
/// threads.
#[test]
fn detect_spans_carry_grouping_path_and_morsels_nest() {
    let _g = lock();
    let _t = trace_on();
    let d = dirty_customers(ROWS, 0.05, SEED);
    let mut s = QualityServer::new(d.db.clone(), "customer")
        .unwrap()
        .with_config(ServerConfig {
            detect_threads: Some(1),
            ..ServerConfig::default()
        });
    dispatch_line(
        &mut s,
        &Request::RegisterCfds {
            text: CANONICAL_CFDS.to_string(),
        }
        .encode(),
    );
    dispatch_line(&mut s, &Request::Detect.encode());
    let report = trace::last_trace().unwrap();
    assert_eq!(report.name, "api.detect");
    assert_coherent_tree(&report, "server detect");
    let paths: Vec<&str> = report
        .spans
        .iter()
        .filter(|s| s.name == "detect.cfd")
        .filter_map(|s| s.attr("path"))
        .collect();
    assert!(
        !paths.is_empty()
            && paths
                .iter()
                .all(|p| ["dense", "hashed", "wide", "constant"].contains(p)),
        "every recomputed CFD is tagged with its grouping path, got {paths:?}"
    );
    // The snapshot-cache decision is recorded on the cold request.
    assert!(
        report
            .spans
            .iter()
            .any(|s| s.name == "cache.snapshot" && s.attr("decision") == Some("encode")),
        "cold detect encodes"
    );

    // Chunked + threaded: the (CFD × chunk) morsels must land under one
    // request tree even though they ran on pool workers.
    let table = d.db.table("customer").unwrap();
    let cols: Vec<usize> = (0..table.schema().arity()).collect();
    let snap = Snapshot::projected_with_chunk(table, &cols, 64);
    assert!(snap.n_chunks() >= 2);
    {
        let _rt = trace::root("test.threaded_detect");
        semandaq::colstore::detect_on_snapshot_threads(&snap, &d.cfds, 4).unwrap();
    }
    let threaded = trace::last_trace().unwrap();
    assert_eq!(threaded.name, "test.threaded_detect");
    assert_coherent_tree(&threaded, "threaded detect");
    let root = threaded.root().unwrap();
    let morsels: Vec<_> = threaded
        .spans
        .iter()
        .filter(|s| s.name == "detect.morsel")
        .collect();
    let n_vars = d.cfds.iter().filter(|c| c.rhs_pat.is_wild()).count();
    assert_eq!(morsels.len(), n_vars * snap.n_chunks());
    assert!(morsels.iter().all(|m| m.parent == root.id));
    assert!(
        morsels.iter().any(|m| m.thread != root.thread),
        "morsels ran on pool workers"
    );
}

/// The flight recorder retains exactly the last `ring_capacity()` traces,
/// oldest evicted first.
#[test]
fn flight_recorder_ring_is_bounded() {
    let _g = lock();
    let _t = trace_on();
    let n = trace::ring_capacity();
    for _ in 0..n + 5 {
        let _rt = trace::root("ring.filler");
    }
    let _rt = trace::root("ring.newest");
    drop(_rt);
    let traces = trace::recent_traces();
    assert_eq!(traces.len(), n, "ring bounded at capacity");
    assert_eq!(
        trace::last_trace().unwrap().name,
        "ring.newest",
        "newest survives, oldest evicted"
    );
}

/// `Request::Trace` round-trips through `dispatch_line` on every
/// trace-capable backend, returning the span tree of the *previous*
/// request, codec-stable.
#[test]
fn trace_round_trips_through_dispatch_line_on_every_backend() {
    let _g = lock();
    let _t = trace_on();
    let d = dirty_customers(ROWS, 0.05, SEED);
    let table = d.db.table("customer").unwrap();
    let mut backends: Vec<(&str, Box<dyn QualityBackend>)> = vec![
        (
            "server",
            Box::new(QualityServer::new(d.db.clone(), "customer").unwrap()),
        ),
        (
            "cluster",
            Box::new(
                ShardedQualityServer::partition(table, 3, Box::new(HashRouter::new(vec![1])))
                    .unwrap(),
            ),
        ),
        (
            "monitor",
            Box::new(
                DataMonitor::new(
                    d.db.clone(),
                    "customer",
                    Vec::new(),
                    MonitorMode::DetectOnly,
                )
                .unwrap(),
            ),
        ),
    ];
    for (label, b) in &mut backends {
        assert!(b.capabilities().trace, "{label} advertises tracing");
        dispatch_line(
            b.as_mut(),
            &Request::RegisterCfds {
                text: CANONICAL_CFDS.to_string(),
            }
            .encode(),
        );
        dispatch_line(b.as_mut(), &Request::Detect.encode());
        let out = dispatch_line(b.as_mut(), &Request::Trace.encode());
        let resp = Response::decode(&out).unwrap_or_else(|e| panic!("{label}: {e}"));
        let Response::Trace(report) = resp else {
            panic!("{label}: expected Trace, got {resp:?}");
        };
        // The trace guard of the Trace request itself only completes after
        // the response is built, so the wire always carries the previous
        // request — here, the detect.
        assert_eq!(report.name, "api.detect", "{label}");
        assert_coherent_tree(&report, label);
        let reencoded = Response::Trace(report.clone()).encode();
        assert_eq!(
            Response::decode(&reencoded).unwrap(),
            Response::Trace(report.clone()),
            "{label}: codec round-trip"
        );
        // The exporter produces one well-formed JSON array with one event
        // per span (validated structurally here; CI parses it with a real
        // JSON parser).
        let chrome = report.to_chrome_json();
        assert!(chrome.starts_with('[') && chrome.ends_with(']'), "{label}");
        assert_eq!(
            chrome.matches("\"ph\":\"X\"").count(),
            report.spans.len(),
            "{label}: one complete event per span"
        );
    }
}

/// Tracing off (the default) records nothing and hands out inert guards —
/// the zero-overhead contract the benchmarks rely on.
#[test]
fn disabled_tracing_records_nothing() {
    let _g = lock();
    trace::set_enabled(false);
    trace::clear();
    let d = dirty_customers(100, 0.05, SEED);
    let mut s = QualityServer::new(d.db, "customer").unwrap();
    dispatch_line(
        &mut s,
        &Request::RegisterCfds {
            text: CANONICAL_CFDS.to_string(),
        }
        .encode(),
    );
    dispatch_line(&mut s, &Request::Detect.encode());
    assert!(trace::last_trace().is_none(), "no trace captured");
    assert!(!semandaq::obs::trace::span("noop").active());
    // The wire op degrades to a protocol error, not a panic.
    let out = dispatch_line(&mut s, &Request::Trace.encode());
    let resp = Response::decode(&out).unwrap();
    assert!(
        matches!(resp, Response::Error { ref message } if message.contains("SDQ_TRACE")),
        "got {resp:?}"
    );
}
