//! Backend conformance: one shared mutation + detect + audit script runs
//! against every [`QualityBackend`] — `QualityServer` (Native and
//! Columnar), `ShardedQualityServer` (hash and round-robin routers, shard
//! counts 1/3/5) and `DataMonitor` — and every backend must produce
//! `normalized()`-equal violation reports, equal audit dirty fractions
//! and equal row counts at every step. The same script also runs through
//! the wire protocol (`Request` → `dispatch` → `Response`) and must
//! observe the same summaries.

use semandaq::api::{dispatch, Mutation, MutationBatch, QualityBackend, Request, Response};
use semandaq::cfd::CfdError;
use semandaq::cluster::{HashRouter, RoundRobinRouter, ShardRouter, ShardedQualityServer};
use semandaq::datagen::{customer::CANONICAL_CFDS, dirty_customers};
use semandaq::detect::ViolationReport;
use semandaq::minidb::{RowId, Value};
use semandaq::system::{DataMonitor, DetectorKind, MonitorMode, QualityServer, ServerConfig};

const ROWS: usize = 200;
const SEED: u64 = 4242;

/// Every backend under test, over identical initial data, labelled.
fn backends() -> Vec<(String, Box<dyn QualityBackend>)> {
    let d = dirty_customers(ROWS, 0.05, SEED);
    let table = d.db.table("customer").unwrap();
    let mut out: Vec<(String, Box<dyn QualityBackend>)> = Vec::new();
    for (label, kind) in [
        ("server/native", DetectorKind::Native),
        ("server/columnar", DetectorKind::Columnar),
    ] {
        let s = QualityServer::new(d.db.clone(), "customer")
            .unwrap()
            .with_config(ServerConfig {
                detector: kind,
                ..ServerConfig::default()
            });
        out.push((label.to_string(), Box::new(s)));
    }
    for shards in [1usize, 3, 5] {
        let routers: Vec<(&str, Box<dyn ShardRouter>)> = vec![
            ("rr", Box::new(RoundRobinRouter::default())),
            ("hash", Box::new(HashRouter::new(vec![1]))),
        ];
        for (rname, router) in routers {
            let c = ShardedQualityServer::partition(table, shards, router).unwrap();
            out.push((format!("cluster/{rname}/s{shards}"), Box::new(c)));
        }
    }
    // The monitor starts with an empty rule set; the script registers the
    // canonical rules through the trait like everywhere else.
    let m = DataMonitor::new(
        d.db.clone(),
        "customer",
        Vec::new(),
        MonitorMode::DetectOnly,
    )
    .unwrap();
    out.push(("monitor".to_string(), Box::new(m)));
    out
}

/// A donor row (clone of the first live row) with one corrupted column.
fn dirty_row(corrupt_col: usize, v: &str) -> Vec<Value> {
    let d = dirty_customers(ROWS, 0.05, SEED);
    let mut row: Vec<Value> =
        d.db.table("customer")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .1
            .to_vec();
    row[corrupt_col] = Value::str(v);
    row
}

/// One observed step: the normalized report, the audit dirty fraction and
/// the row count after the step.
#[derive(Debug, PartialEq)]
struct Step {
    report: ViolationReport,
    dirty_fraction: f64,
    rows: usize,
}

/// The shared script: register → observe → batch-mutate → observe →
/// single mutations → observe. Deterministic row picks (global ids are
/// allocated identically by every backend).
fn run_script(b: &mut dyn QualityBackend) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut observe = |b: &mut dyn QualityBackend| {
        let report = b.detect().expect("detect").normalized();
        // last_report must now be current and agree with the detect.
        let cached = b
            .last_report()
            .expect("report cached after detect")
            .normalized();
        assert_eq!(cached, report, "last_report == detect");
        let dirty_fraction = b.audit().expect("audit").dirty_fraction();
        steps.push(Step {
            report,
            dirty_fraction,
            rows: b.len(),
        });
    };

    let rules = b.register_cfds(CANONICAL_CFDS).expect("canonical rules");
    assert!(rules > 0);
    observe(b);

    // A mixed batch: two dirty inserts, a corrupting cell update, a
    // delete — all through the amortized path.
    let out = b
        .apply_batch(MutationBatch {
            mutations: vec![
                Mutation::Insert(dirty_row(2, "WRONGCITY")),
                Mutation::SetCell {
                    row: RowId(3),
                    col: 2,
                    value: Value::str("ELSEWHERE"),
                },
                Mutation::Insert(dirty_row(1, "XX")),
                Mutation::Delete(RowId(7)),
            ],
        })
        .expect("batch applies");
    assert_eq!(out.applied, 4);
    assert_eq!(
        out.inserted,
        vec![RowId(ROWS as u64), RowId(ROWS as u64 + 1)],
        "global id allocation is backend-independent"
    );
    observe(b);

    // Single-mutation surface: overwrite one cell, delete one insert.
    b.update_cell(RowId(3), 2, Value::str("RESTORED"))
        .expect("update");
    b.delete(out.inserted[0]).expect("delete");
    observe(b);
    steps
}

#[test]
fn all_backends_agree_on_the_shared_script() {
    let mut all = backends();
    let (ref_label, reference) = {
        let (label, b) = &mut all[0];
        (label.clone(), run_script(b.as_mut()))
    };
    assert!(
        !reference[0].report.is_empty(),
        "the workload has violations to find"
    );
    assert!(reference[0].dirty_fraction > 0.0);
    for (label, b) in &mut all[1..] {
        let got = run_script(b.as_mut());
        assert_eq!(got.len(), reference.len());
        for (i, (g, want)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(
                g, want,
                "step {i}: backend '{label}' diverges from '{ref_label}'"
            );
        }
    }
}

#[test]
fn capabilities_describe_each_backend() {
    for (label, b) in backends() {
        let caps = b.capabilities();
        match label.as_str() {
            "server/native" | "server/columnar" => {
                assert!(caps.repair);
                assert!(!caps.streaming);
                assert_eq!(caps.shards, 1);
            }
            "monitor" => {
                assert!(!caps.repair);
                assert!(caps.streaming);
            }
            l => {
                assert!(l.starts_with("cluster/"));
                assert!(!caps.repair);
                let shards: usize = l.rsplit("/s").next().unwrap().parse().unwrap();
                assert_eq!(caps.shards, shards, "{l}");
            }
        }
    }
}

#[test]
fn repair_is_capability_gated() {
    for (label, mut b) in backends() {
        b.register_cfds(CANONICAL_CFDS).unwrap();
        let caps = b.capabilities();
        let repaired = b.repair();
        if caps.repair {
            let summary = repaired.unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(summary.residual, 0, "{label} converges");
            assert!(summary.changes > 0, "{label} had something to fix");
            assert!(
                b.detect().unwrap().is_empty(),
                "{label} is clean after repair"
            );
        } else {
            assert!(
                matches!(repaired, Err(CfdError::Unsupported(_))),
                "{label} must refuse repair"
            );
        }
    }
}

#[test]
fn dispatched_wire_script_matches_direct_calls() {
    // Drive every backend through encoded Requests; the wire summaries
    // must agree across backends exactly like the direct reports do.
    let mut summaries: Vec<(String, Vec<Response>)> = Vec::new();
    for (label, mut b) in backends() {
        let requests = vec![
            Request::RegisterCfds {
                text: CANONICAL_CFDS.to_string(),
            },
            Request::Capabilities,
            Request::Len,
            Request::Detect,
            Request::ApplyBatch {
                batch: MutationBatch {
                    mutations: vec![
                        Mutation::Insert(dirty_row(2, "WRONGCITY")),
                        Mutation::Delete(RowId(5)),
                    ],
                },
            },
            Request::Detect,
            Request::Audit,
            Request::LastReport,
            Request::Len,
        ];
        let mut responses = Vec::new();
        for req in requests {
            // Round-trip the request through its wire form before serving
            // it, exactly as a remote client would.
            let decoded = Request::decode(&req.encode()).expect("request round-trips");
            assert_eq!(decoded, req);
            let resp = dispatch(b.as_mut(), decoded);
            let wire = Response::decode(&resp.encode()).expect("response round-trips");
            assert_eq!(wire, resp);
            assert!(
                !matches!(resp, Response::Error { .. }),
                "{label}: unexpected error for {req:?}"
            );
            responses.push(resp);
        }
        summaries.push((label, responses));
    }
    // Capabilities legitimately differ; everything else must be equal.
    let (ref_label, reference) = &summaries[0];
    for (label, got) in &summaries[1..] {
        for (i, (g, want)) in got.iter().zip(reference).enumerate() {
            if matches!(want, Response::Caps(_)) {
                continue;
            }
            assert_eq!(g, want, "request {i}: '{label}' vs '{ref_label}'");
        }
    }
}
