//! Backend conformance: one shared mutation + detect + audit + repair
//! script runs against every [`QualityBackend`] — `QualityServer` (Native
//! and Columnar), `ShardedQualityServer` (hash and round-robin routers,
//! shard counts 1/3/5) and `DataMonitor` — and every backend must produce
//! `normalized()`-equal violation reports, equal audit dirty fractions
//! and equal row counts at every step. Repair-capable backends (both
//! server configs and all six cluster configs) additionally run the
//! script's `Repair` step, must end with an all-clean `audit()` and
//! pairwise-equal repaired tables; the monitor must refuse repair with
//! `CfdError::Unsupported` both directly and through the wire. The same
//! script also runs through the wire protocol (`Request` → `dispatch` →
//! `Response`) and must observe the same summaries.

use semandaq::api::{
    dispatch, dispatch_line, Mutation, MutationBatch, QualityBackend, Request, Response,
};
use semandaq::cfd::CfdError;
use semandaq::cluster::{HashRouter, RoundRobinRouter, ShardRouter, ShardedQualityServer};
use semandaq::datagen::{customer::CANONICAL_CFDS, dirty_customers};
use semandaq::detect::ViolationReport;
use semandaq::minidb::{RowId, Table, Value};
use semandaq::system::{DataMonitor, DetectorKind, MonitorMode, QualityServer, ServerConfig};

const ROWS: usize = 200;
const SEED: u64 = 4242;

/// One backend under test, kept concrete so the repair conformance can
/// reach the repaired relation (the trait has no table accessor — tables
/// are pulled through the explorer APIs, not the command protocol).
enum Backend {
    Server(QualityServer),
    Cluster(ShardedQualityServer),
    Monitor(DataMonitor),
}

impl Backend {
    fn as_dyn(&mut self) -> &mut dyn QualityBackend {
        match self {
            Backend::Server(s) => s,
            Backend::Cluster(c) => c,
            Backend::Monitor(m) => m,
        }
    }

    /// The backend's current relation, materialized (the cluster merges
    /// its shards; every row under its global id).
    fn table(&self) -> Option<Table> {
        match self {
            Backend::Server(s) => s.table().ok().cloned(),
            Backend::Cluster(c) => c.merged_table().ok(),
            Backend::Monitor(_) => None,
        }
    }
}

/// Every backend under test, over identical initial data, labelled.
fn backends() -> Vec<(String, Backend)> {
    let d = dirty_customers(ROWS, 0.05, SEED);
    let table = d.db.table("customer").unwrap();
    let mut out: Vec<(String, Backend)> = Vec::new();
    for (label, kind) in [
        ("server/native", DetectorKind::Native),
        ("server/columnar", DetectorKind::Columnar),
    ] {
        let s = QualityServer::new(d.db.clone(), "customer")
            .unwrap()
            .with_config(ServerConfig {
                detector: kind,
                ..ServerConfig::default()
            });
        out.push((label.to_string(), Backend::Server(s)));
    }
    for shards in [1usize, 3, 5] {
        let routers: Vec<(&str, Box<dyn ShardRouter>)> = vec![
            ("rr", Box::new(RoundRobinRouter::default())),
            ("hash", Box::new(HashRouter::new(vec![1]))),
        ];
        for (rname, router) in routers {
            let c = ShardedQualityServer::partition(table, shards, router).unwrap();
            out.push((format!("cluster/{rname}/s{shards}"), Backend::Cluster(c)));
        }
    }
    // The monitor starts with an empty rule set; the script registers the
    // canonical rules through the trait like everywhere else.
    let m = DataMonitor::new(
        d.db.clone(),
        "customer",
        Vec::new(),
        MonitorMode::DetectOnly,
    )
    .unwrap();
    out.push(("monitor".to_string(), Backend::Monitor(m)));
    out
}

/// A donor row (clone of the first live row) with one corrupted column.
fn dirty_row(corrupt_col: usize, v: &str) -> Vec<Value> {
    let d = dirty_customers(ROWS, 0.05, SEED);
    let mut row: Vec<Value> =
        d.db.table("customer")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .1
            .to_vec();
    row[corrupt_col] = Value::str(v);
    row
}

/// A table's rows keyed by global id — the comparison form for
/// "`normalized()`-equal repaired relations" across backends.
type TableRows = Vec<(RowId, Vec<Value>)>;

fn table_rows(t: &Table) -> TableRows {
    let mut rows: TableRows = t.iter().map(|(id, r)| (id, r.to_vec())).collect();
    rows.sort_by_key(|(id, _)| *id);
    rows
}

/// One observed step: the normalized report, the audit dirty fraction and
/// the row count after the step.
#[derive(Debug, PartialEq)]
struct Step {
    report: ViolationReport,
    dirty_fraction: f64,
    rows: usize,
}

/// The shared script: register → observe → batch-mutate → observe →
/// single mutations → observe → (capable backends only) repair → observe.
/// Deterministic row picks (global ids are allocated identically by every
/// backend).
fn run_script(b: &mut dyn QualityBackend) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut observe = |b: &mut dyn QualityBackend| {
        let report = b.detect().expect("detect").normalized();
        // last_report must now be current and agree with the detect.
        let cached = b
            .last_report()
            .expect("report cached after detect")
            .normalized();
        assert_eq!(cached, report, "last_report == detect");
        let dirty_fraction = b.audit().expect("audit").dirty_fraction();
        steps.push(Step {
            report,
            dirty_fraction,
            rows: b.len(),
        });
    };

    let rules = b.register_cfds(CANONICAL_CFDS).expect("canonical rules");
    assert!(rules > 0);
    observe(b);

    // A mixed batch: two dirty inserts, a corrupting cell update, a
    // delete — all through the amortized path.
    let out = b
        .apply_batch(MutationBatch {
            mutations: vec![
                Mutation::Insert(dirty_row(2, "WRONGCITY")),
                Mutation::SetCell {
                    row: RowId(3),
                    col: 2,
                    value: Value::str("ELSEWHERE"),
                },
                Mutation::Insert(dirty_row(1, "XX")),
                Mutation::Delete(RowId(7)),
            ],
        })
        .expect("batch applies");
    assert_eq!(out.applied, 4);
    assert_eq!(
        out.inserted,
        vec![RowId(ROWS as u64), RowId(ROWS as u64 + 1)],
        "global id allocation is backend-independent"
    );
    observe(b);

    // Single-mutation surface: overwrite one cell, delete one insert.
    b.update_cell(RowId(3), 2, Value::str("RESTORED"))
        .expect("update");
    b.delete(out.inserted[0]).expect("delete");
    observe(b);

    // The repair step: capability-gated, so only the backends that
    // advertise it run it — and they must end all-clean.
    if b.capabilities().repair {
        let summary = b.repair().expect("repair-capable backend repairs");
        assert_eq!(summary.residual, 0, "repair converges");
        assert!(summary.changes > 0, "the script left something to fix");
        observe(b);
        let last = steps.last().unwrap();
        assert!(last.report.is_empty(), "all-clean after repair");
        assert_eq!(last.dirty_fraction, 0.0);
    }
    steps
}

#[test]
fn all_backends_agree_on_the_shared_script() {
    let mut all = backends();
    let (ref_label, reference) = {
        let (label, b) = &mut all[0];
        (label.clone(), run_script(b.as_dyn()))
    };
    assert!(
        !reference[0].report.is_empty(),
        "the workload has violations to find"
    );
    assert!(reference[0].dirty_fraction > 0.0);
    let ref_table = table_rows(&all[0].1.table().expect("server exposes its table"));
    for (label, b) in &mut all[1..] {
        let capable = b.as_dyn().capabilities().repair;
        let got = run_script(b.as_dyn());
        // Non-capable backends skip the post-repair step; everything they
        // do observe must match the reference prefix.
        let want = if capable {
            &reference[..]
        } else {
            &reference[..reference.len() - 1]
        };
        assert_eq!(got.len(), want.len(), "backend '{label}'");
        for (i, (g, want)) in got.iter().zip(want).enumerate() {
            assert_eq!(
                g, want,
                "step {i}: backend '{label}' diverges from '{ref_label}'"
            );
        }
        if capable {
            assert_eq!(
                table_rows(&b.table().expect("capable backends expose tables")),
                ref_table,
                "backend '{label}': repaired relation diverges from '{ref_label}'"
            );
        }
    }
}

#[test]
fn capabilities_describe_each_backend() {
    for (label, b) in &mut backends() {
        let caps = b.as_dyn().capabilities();
        match label.as_str() {
            "server/native" | "server/columnar" => {
                assert!(caps.repair);
                assert!(!caps.streaming);
                assert_eq!(caps.shards, 1);
            }
            "monitor" => {
                assert!(!caps.repair);
                assert!(caps.streaming);
            }
            l => {
                assert!(l.starts_with("cluster/"));
                assert!(caps.repair, "{l}: sharded repair is a capability now");
                let shards: usize = l.rsplit("/s").next().unwrap().parse().unwrap();
                assert_eq!(caps.shards, shards, "{l}");
            }
        }
    }
}

#[test]
fn repair_is_capability_gated_and_agrees_across_backends() {
    let mut repaired: Vec<(String, TableRows)> = Vec::new();
    for (label, mut b) in backends() {
        b.as_dyn().register_cfds(CANONICAL_CFDS).unwrap();
        let caps = b.as_dyn().capabilities();
        let outcome = b.as_dyn().repair();
        if caps.repair {
            let summary = outcome.unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(summary.residual, 0, "{label} converges");
            assert!(summary.changes > 0, "{label} had something to fix");
            assert!(
                b.as_dyn().detect().unwrap().is_empty(),
                "{label} is clean after repair"
            );
            assert_eq!(
                b.as_dyn().audit().unwrap().dirty_fraction(),
                0.0,
                "{label}: all-clean audit"
            );
            repaired.push((
                label,
                table_rows(&b.table().expect("capable backends expose tables")),
            ));
        } else {
            // Refused directly…
            assert!(
                matches!(outcome, Err(CfdError::Unsupported(_))),
                "{label} must refuse repair"
            );
            // …and through the wire, as an encoded Error response.
            let wire = dispatch(b.as_dyn(), Request::Repair);
            let Response::Error { message } = wire else {
                panic!("{label}: wire repair must answer Error, got {wire:?}");
            };
            assert!(
                message.contains("does not support repair"),
                "{label}: {message}"
            );
        }
    }
    // Every repair-capable backend converged on the same relation.
    assert_eq!(repaired.len(), 8, "2 server configs + 6 cluster configs");
    let (ref_label, reference) = &repaired[0];
    for (label, rows) in &repaired[1..] {
        assert_eq!(rows, reference, "'{label}' vs '{ref_label}'");
    }
}

#[test]
fn metrics_round_trip_through_dispatch_line_on_every_backend() {
    for (label, mut b) in backends() {
        assert!(
            b.as_dyn().capabilities().metrics,
            "{label}: every in-process backend shares the obs registry"
        );
        b.as_dyn().register_cfds(CANONICAL_CFDS).unwrap();
        b.as_dyn().detect().unwrap();
        // Full wire loop: encoded request line in, encoded response line
        // out, decoded back on the client side.
        let out = dispatch_line(b.as_dyn(), &Request::Metrics.encode());
        let resp = Response::decode(&out).unwrap_or_else(|e| panic!("{label}: {e}"));
        let Response::Metrics(report) = resp else {
            panic!("{label}: expected Metrics, got {resp:?}");
        };
        // The decoded report must survive another exact codec round-trip…
        let reencoded = Response::Metrics(report.clone()).encode();
        assert_eq!(
            Response::decode(&reencoded).unwrap(),
            Response::Metrics(report.clone()),
            "{label}"
        );
        // …and already contains the dispatch instrumentation's record of
        // this very request (the counter bumps before the snapshot).
        assert!(
            report
                .counter("api_requests_total{kind=\"metrics\"}")
                .unwrap_or(0)
                >= 1,
            "{label}: dispatch counts the metrics request itself"
        );
    }
}

#[test]
fn dispatched_wire_script_matches_direct_calls() {
    // Drive every backend through encoded Requests; the wire summaries
    // must agree across backends exactly like the direct reports do.
    let mut summaries: Vec<(String, bool, Vec<Response>)> = Vec::new();
    for (label, mut b) in backends() {
        let capable = b.as_dyn().capabilities().repair;
        let requests = vec![
            Request::RegisterCfds {
                text: CANONICAL_CFDS.to_string(),
            },
            Request::Capabilities,
            Request::Len,
            Request::Detect,
            Request::ApplyBatch {
                batch: MutationBatch {
                    mutations: vec![
                        Mutation::Insert(dirty_row(2, "WRONGCITY")),
                        Mutation::Delete(RowId(5)),
                    ],
                },
            },
            Request::Detect,
            Request::Audit,
            Request::Repair,
            Request::Detect,
            Request::Audit,
            Request::LastReport,
            Request::Len,
        ];
        let mut responses = Vec::new();
        for req in requests {
            // Round-trip the request through its wire form before serving
            // it, exactly as a remote client would.
            let decoded = Request::decode(&req.encode()).expect("request round-trips");
            assert_eq!(decoded, req);
            let resp = dispatch(b.as_dyn(), decoded);
            let wire = Response::decode(&resp.encode()).expect("response round-trips");
            assert_eq!(wire, resp);
            // The only legitimate refusal in the script is the monitor's
            // capability-gated Repair.
            if matches!(req, Request::Repair) && !capable {
                assert!(
                    matches!(&resp, Response::Error { message } if message.contains("repair")),
                    "{label}: non-capable repair must refuse over the wire"
                );
            } else {
                assert!(
                    !matches!(resp, Response::Error { .. }),
                    "{label}: unexpected error for {req:?}"
                );
            }
            responses.push(resp);
        }
        summaries.push((label, capable, responses));
    }
    // Capabilities legitimately differ, and the monitor diverges from the
    // Repair request onward (its refusal leaves the data dirty); every
    // response before that — and, among capable backends, every response
    // including the repair summary — must be equal.
    let (ref_label, _, reference) = &summaries[0];
    let repair_at = 7;
    for (label, capable, got) in &summaries[1..] {
        for (i, (g, want)) in got.iter().zip(reference).enumerate() {
            if matches!(want, Response::Caps(_)) || (!capable && i >= repair_at) {
                continue;
            }
            assert_eq!(g, want, "request {i}: '{label}' vs '{ref_label}'");
        }
    }
}
