//! Service-tier correctness over real backends and a real socket.
//!
//! The load-bearing test drives a `NetServer` on loopback with reader
//! threads hammering `Detect`/`Audit`/`Len` while a writer client
//! streams the mutation script, and checks the MVCC-lite contract from
//! both sides:
//!
//! * **no torn state** — an in-process handle pairs each published
//!   epoch's `writes_applied` with the answer a fresh backend gives
//!   after exactly that serial prefix (replayed through the same
//!   `dispatch`), and demands equality;
//! * **every wire read is some epoch** — socket readers may race the
//!   writer, so each of their answers must be *a member* of the serial
//!   prefix answer set;
//! * **the end state is serial** — after shutdown the backend's table
//!   and its final detect/audit/report/len wire responses are
//!   byte-identical to the same script run serially through `dispatch`,
//!   for the single-node server and the sharded cluster alike.
//!
//! Around that: frame-edge behavior over TCP (malformed / empty /
//! oversized lines answer encoded errors and the connection
//! resynchronizes), pipelining order, connection and write-queue
//! backpressure, idle-timeout behavior, and `Send` pins for every
//! backend the writer thread may own.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Duration;

use semandaq::api::wire::MAX_FRAME_BYTES;
use semandaq::api::{dispatch, Mutation, MutationBatch, QualityBackend, Request, Response};
use semandaq::cluster::{HashRouter, ShardedQualityServer};
use semandaq::datagen::{customer::CANONICAL_CFDS, dirty_customers};
use semandaq::minidb::{RowId, Table, Value};
use semandaq::net::{Client, NetConfig, NetServer};
use semandaq::system::{DataMonitor, MonitorMode, QualityServer};

const ROWS: usize = 200;
const SEED: u64 = 4242;

fn single() -> QualityServer {
    let d = dirty_customers(ROWS, 0.05, SEED);
    QualityServer::new(d.db, "customer").unwrap()
}

fn cluster() -> ShardedQualityServer {
    let d = dirty_customers(ROWS, 0.05, SEED);
    ShardedQualityServer::partition(
        d.db.table("customer").unwrap(),
        3,
        Box::new(HashRouter::new(vec![1])),
    )
    .unwrap()
}

/// Loopback config sized for tests: OS-assigned port, small pool.
fn test_config() -> NetConfig {
    NetConfig {
        addr: "127.0.0.1:0".into(),
        net_threads: 4,
        max_conns: 32,
        queue_depth: 64,
        idle_timeout: Duration::from_secs(10),
        max_frame: MAX_FRAME_BYTES,
    }
}

/// A donor row (clone of the first live row) with one corrupted column.
fn dirty_row(corrupt_col: usize, v: &str) -> Vec<Value> {
    let d = dirty_customers(ROWS, 0.05, SEED);
    let mut row: Vec<Value> =
        d.db.table("customer")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .1
            .to_vec();
    row[corrupt_col] = Value::str(v);
    row
}

fn table_rows(t: &Table) -> Vec<(RowId, Vec<Value>)> {
    let mut rows: Vec<(RowId, Vec<Value>)> = t.iter().map(|(id, r)| (id, r.to_vec())).collect();
    rows.sort_by_key(|(id, _)| *id);
    rows
}

/// The deterministic mutation stream: registration, a mixed batch, then
/// interleaved inserts / deletes / cell updates. Global row ids are
/// allocated identically by every backend, so the targets are fixed.
fn write_script() -> Vec<Request> {
    let mut script = vec![
        Request::RegisterCfds {
            text: CANONICAL_CFDS.to_string(),
        },
        Request::ApplyBatch {
            batch: MutationBatch {
                mutations: vec![
                    Mutation::Insert(dirty_row(2, "WRONGCITY")),
                    Mutation::SetCell {
                        row: RowId(3),
                        col: 2,
                        value: Value::str("ELSEWHERE"),
                    },
                    Mutation::Insert(dirty_row(1, "XX")),
                    Mutation::Delete(RowId(7)),
                ],
            },
        },
    ];
    // The batch inserted global ids 200 and 201; loop inserts continue
    // from 202, one per iteration.
    for i in 0..12u64 {
        script.push(Request::Insert {
            row: dirty_row(3, &format!("Z{i:04}")),
        });
        if i % 3 == 0 {
            script.push(Request::Delete {
                row: RowId(ROWS as u64 + 2 + i),
            });
        }
        if i % 4 == 0 {
            script.push(Request::UpdateCell {
                row: RowId(i + 10),
                col: 2,
                value: Value::str("MOVED"),
            });
        }
    }
    script
}

/// Epilogue reads whose final answers must match serial `dispatch`
/// byte for byte.
fn epilogue() -> [Request; 4] {
    [
        Request::Detect,
        Request::Audit,
        Request::LastReport,
        Request::Len,
    ]
}

/// What a serial run answers after each write prefix.
struct Prefix {
    detect: Response,
    audit: Response,
    len: usize,
}

/// Rows of a table in id order, the byte-comparable final state.
type TableRows = Vec<(RowId, Vec<Value>)>;

/// Replay the script one write at a time through serial `dispatch`,
/// recording the detect/audit/len answers after every prefix (index i =
/// "first i writes applied"). Returns the prefixes, the final table,
/// and the encoded epilogue responses.
fn serial_reference<B: QualityBackend>(
    backend: &mut B,
    table_of: impl Fn(&B) -> Table,
) -> (Vec<Prefix>, TableRows, Vec<String>) {
    let mut prefixes = vec![Prefix {
        detect: dispatch(backend, Request::Detect),
        audit: dispatch(backend, Request::Audit),
        len: backend.len(),
    }];
    for write in write_script() {
        dispatch(backend, write);
        prefixes.push(Prefix {
            detect: dispatch(backend, Request::Detect),
            audit: dispatch(backend, Request::Audit),
            len: backend.len(),
        });
    }
    let finals = epilogue()
        .into_iter()
        .map(|req| dispatch(backend, req).encode())
        .collect();
    (prefixes, table_rows(&table_of(backend)), finals)
}

/// The tentpole test body, generic over the concrete backend so the
/// final table can be compared.
fn service_matches_serial<B: QualityBackend + Send + 'static>(
    make: fn() -> B,
    table_of: fn(&B) -> Table,
) {
    let (prefixes, serial_table, serial_finals) = {
        let mut serial = make();
        serial_reference(&mut serial, table_of)
    };
    // Membership sets for racing socket readers.
    let legal_detects: HashSet<String> = prefixes.iter().map(|p| p.detect.encode()).collect();
    let legal_audits: HashSet<String> = prefixes.iter().map(|p| p.audit.encode()).collect();
    let legal_lens: HashSet<usize> = prefixes.iter().map(|p| p.len).collect();

    let server = NetServer::serve(make(), test_config()).expect("bind loopback");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let reads_served = Arc::new(AtomicUsize::new(0));

    // Socket readers: hammer Detect / Audit / Len; all answers must be
    // members of the serial prefix sets.
    let wire_readers: Vec<_> = (0..3)
        .map(|r| {
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads_served);
            let detects = legal_detects.clone();
            let audits = legal_audits.clone();
            let lens = legal_lens.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                while !stop.load(SeqCst) {
                    let detect = client.request(&Request::Detect).expect("detect over wire");
                    assert!(
                        detects.contains(&detect.encode()),
                        "reader {r}: detect answer is no serial prefix: {detect:?}"
                    );
                    let audit = client.request(&Request::Audit).expect("audit over wire");
                    assert!(
                        audits.contains(&audit.encode()),
                        "reader {r}: audit answer is no serial prefix: {audit:?}"
                    );
                    match client.request(&Request::Len).expect("len over wire") {
                        Response::Len { rows } => {
                            assert!(lens.contains(&rows), "reader {r}: torn len {rows}")
                        }
                        other => panic!("reader {r}: {other:?}"),
                    }
                    reads.fetch_add(3, SeqCst);
                }
            })
        })
        .collect();

    // In-process reader: pairs each epoch's writes_applied with the
    // exact serial prefix — the no-torn-state check.
    let paired_reader = {
        let handle = server.handle().expect("in-process handle");
        let stop = Arc::clone(&stop);
        let prefix_answers: Vec<(Response, usize)> =
            prefixes.iter().map(|p| (p.detect.clone(), p.len)).collect();
        std::thread::spawn(move || {
            let mut paired = 0usize;
            let mut last_epoch = 0;
            while !stop.load(SeqCst) {
                let state = handle.state();
                assert!(state.epoch >= last_epoch, "epochs are monotone");
                last_epoch = state.epoch;
                let (detect, len) = &prefix_answers[state.writes_applied as usize];
                assert_eq!(
                    &state.detect, detect,
                    "epoch {} (prefix {}): torn detect state",
                    state.epoch, state.writes_applied
                );
                assert_eq!(state.len, *len, "epoch {}: torn len", state.epoch);
                paired += 1;
                std::thread::yield_now();
            }
            paired
        })
    };

    // The writer client: stream the script over its own connection.
    let mut writer = Client::connect(addr).expect("writer connects");
    writer.set_timeout(Some(Duration::from_secs(30))).unwrap();
    for write in write_script() {
        let response = writer.request(&write).expect("write round-trips");
        assert!(
            !matches!(response, Response::Error { .. }),
            "script write refused: {response:?}"
        );
    }
    // Read-your-writes: this connection saw its replies, so its reads
    // observe the full script.
    let finals: Vec<String> = epilogue()
        .into_iter()
        .map(|req| writer.request(&req).expect("epilogue").encode())
        .collect();
    assert_eq!(
        finals, serial_finals,
        "final detect/audit/report/len diverge from serial dispatch"
    );

    stop.store(true, SeqCst);
    for r in wire_readers {
        r.join().expect("wire reader clean");
    }
    assert!(paired_reader.join().expect("paired reader clean") > 0);
    assert!(
        reads_served.load(SeqCst) > 0,
        "readers overlapped the writer"
    );
    drop(writer);

    let backend = server.shutdown();
    assert_eq!(
        table_rows(&table_of(&backend)),
        serial_table,
        "final table diverges from the serial run"
    );
}

#[test]
fn single_node_service_matches_serial_dispatch() {
    service_matches_serial(single, |s| s.table().unwrap().clone());
}

#[test]
fn cluster_service_matches_serial_dispatch() {
    service_matches_serial(cluster, |c| c.merged_table().unwrap());
}

#[test]
fn frame_edges_answer_errors_and_resynchronize() {
    let server = NetServer::serve(single(), test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Malformed, empty, and unknown-op frames: encoded errors, no drop.
    for bad in ["not json", "", "{\"op\":\"nope\"}", "{"] {
        client.send_raw(bad).unwrap();
        match client.recv().unwrap() {
            Response::Error { .. } => {}
            other => panic!("{bad:?} answered {other:?}"),
        }
    }
    // An oversized frame: one error, then the connection resyncs at the
    // newline and keeps serving.
    client.send_raw(&"x".repeat(MAX_FRAME_BYTES + 10)).unwrap();
    match client.recv().unwrap() {
        Response::Error { message } => assert!(message.contains("frame too large"), "{message}"),
        other => panic!("oversized frame answered {other:?}"),
    }
    match client.request(&Request::Len).unwrap() {
        Response::Len { rows } => assert_eq!(rows, ROWS),
        other => panic!("post-resync request answered {other:?}"),
    }
    server.shutdown();
}

#[test]
fn pipelined_frames_answer_in_order_with_read_your_writes() {
    let server = NetServer::serve(single(), test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    // Five frames shipped before any response is read.
    client.send(&Request::Len).unwrap();
    client
        .send(&Request::Insert {
            row: dirty_row(2, "PIPELINED-1"),
        })
        .unwrap();
    client.send(&Request::Len).unwrap();
    client
        .send(&Request::Insert {
            row: dirty_row(2, "PIPELINED-2"),
        })
        .unwrap();
    client.send(&Request::Detect).unwrap();

    let len_before = match client.recv().unwrap() {
        Response::Len { rows } => rows,
        other => panic!("frame 1: {other:?}"),
    };
    assert!(matches!(
        client.recv().unwrap(),
        Response::Inserted { row: RowId(200) }
    ));
    match client.recv().unwrap() {
        // The read between the two writes must observe the first one.
        Response::Len { rows } => assert_eq!(rows, len_before + 1),
        other => panic!("frame 3: {other:?}"),
    }
    assert!(matches!(
        client.recv().unwrap(),
        Response::Inserted { row: RowId(201) }
    ));
    assert!(matches!(client.recv().unwrap(), Response::Report(_)));
    server.shutdown();
}

#[test]
fn connection_backpressure_is_an_explicit_error_frame() {
    let mut config = test_config();
    config.max_conns = 1;
    config.net_threads = 1;
    let server = NetServer::serve(single(), config).unwrap();

    let mut first = Client::connect(server.local_addr()).unwrap();
    first.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // A served round trip guarantees the first connection is counted.
    assert!(matches!(
        first.request(&Request::Len).unwrap(),
        Response::Len { .. }
    ));
    let mut second = Client::connect(server.local_addr()).unwrap();
    second.set_timeout(Some(Duration::from_secs(30))).unwrap();
    match second.recv().unwrap() {
        Response::Error { message } => {
            assert!(message.contains("too many connections"), "{message}")
        }
        other => panic!("over-capacity connection answered {other:?}"),
    }
    drop(second);
    drop(first);
    server.shutdown();
}

#[test]
fn write_queue_backpressure_refuses_instead_of_growing() {
    let mut config = test_config();
    config.queue_depth = 1;
    let server = NetServer::serve(single(), config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(60))).unwrap();

    // Stall the writer with one big batch, then pipeline single writes
    // against a depth-1 queue: most must be refused, in order.
    let stall = MutationBatch {
        mutations: (0..2_000)
            .map(|i| Mutation::Insert(dirty_row(2, &format!("STALL{i}"))))
            .collect(),
    };
    client.send(&Request::ApplyBatch { batch: stall }).unwrap();
    const FOLLOWERS: usize = 400;
    for i in 0..FOLLOWERS {
        client
            .send(&Request::Insert {
                row: dirty_row(2, &format!("FOLLOW{i}")),
            })
            .unwrap();
    }
    assert!(matches!(
        client.recv().unwrap(),
        Response::BatchApplied { applied: 2_000, .. }
    ));
    let mut accepted = 0usize;
    let mut refused = 0usize;
    for _ in 0..FOLLOWERS {
        match client.recv().unwrap() {
            Response::Inserted { .. } => accepted += 1,
            Response::Error { message } => {
                assert!(message.contains("write queue is full"), "{message}");
                refused += 1;
            }
            other => panic!("follower answered {other:?}"),
        }
    }
    assert!(refused > 0, "a depth-1 queue under flood must refuse");
    drop(client);
    let backend = server.shutdown();
    assert_eq!(
        backend.len(),
        ROWS + 2_000 + accepted,
        "accepted writes all applied, refused writes all dropped"
    );
}

#[test]
fn idle_connections_are_closed_and_midframe_timeouts_are_reported() {
    let mut config = test_config();
    config.idle_timeout = Duration::from_millis(200);
    let server = NetServer::serve(single(), config).unwrap();

    // Idle between frames: quiet close.
    let mut idle = Client::connect(server.local_addr()).unwrap();
    idle.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert!(matches!(
        idle.request(&Request::Len).unwrap(),
        Response::Len { .. }
    ));
    match idle.recv() {
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        Ok(other) => panic!("idle close sent {other:?}"),
    }

    // Timeout mid-frame: an explicit error frame, then close.
    let mut stuck = Client::connect(server.local_addr()).unwrap();
    stuck.set_timeout(Some(Duration::from_secs(30))).unwrap();
    // Half a frame, no newline.
    stuck.write_fragment(b"{\"op\":\"le").unwrap();
    match stuck.recv().unwrap() {
        Response::Error { message } => assert!(message.contains("timeout"), "{message}"),
        other => panic!("mid-frame timeout answered {other:?}"),
    }
    server.shutdown();
}

#[test]
fn wire_metrics_report_carries_net_request_counters() {
    let server = NetServer::serve(single(), test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    assert!(matches!(
        client.request(&Request::Detect).unwrap(),
        Response::Report(_)
    ));
    let Response::Metrics(report) = client.request(&Request::Metrics).unwrap() else {
        panic!("metrics over the wire");
    };
    assert!(
        report
            .counter("net_requests_total{kind=\"detect\"}")
            .unwrap_or(0)
            >= 1,
        "the transport counts served requests per kind"
    );
    assert!(report.counter("net_connections_total").unwrap_or(0) >= 1);
    server.shutdown();
}

#[test]
fn shutdown_reports_are_not_needed_for_trailing_unterminated_frames() {
    // A client that forgets the final newline before EOF still gets its
    // frame served.
    let server = NetServer::serve(single(), test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    client
        .write_fragment(Request::Len.encode().as_bytes())
        .unwrap();
    client.shutdown_write().unwrap();
    match client.recv().unwrap() {
        Response::Len { rows } => assert_eq!(rows, ROWS),
        other => panic!("trailing frame answered {other:?}"),
    }
    server.shutdown();
}

/// The writer thread takes ownership of the backend, so every engine the
/// service tier can front must be `Send`. Compile-time pins.
#[test]
fn every_backend_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<QualityServer>();
    assert_send::<ShardedQualityServer>();
    assert_send::<DataMonitor>();
    assert_send::<Box<dyn QualityBackend + Send>>();
    // The monitor is constructible behind the service tier too.
    let d = dirty_customers(16, 0.05, SEED);
    let monitor = DataMonitor::new(d.db, "customer", Vec::new(), MonitorMode::DetectOnly).unwrap();
    let server = NetServer::serve(monitor, test_config()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(matches!(
        client.request(&Request::Len).unwrap(),
        Response::Len { rows: 16 }
    ));
    server.shutdown();
}
