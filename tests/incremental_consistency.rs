//! Property: the incremental detector agrees with batch detection after
//! arbitrary update streams — the Data Monitor never drifts.

mod common;

use common::{arb_cfds, arb_table};
use proptest::prelude::*;
use semandaq::detect::{detect_native, IncrementalDetector};
use semandaq::minidb::{Table, Value};

/// A scripted update against a table.
#[derive(Debug, Clone)]
enum Op {
    InsertCopyOf(usize),
    DeleteNth(usize),
    SetCell { nth: usize, col: usize, val: u8 },
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0usize..50).prop_map(Op::InsertCopyOf),
        (0usize..50).prop_map(Op::DeleteNth),
        ((0usize..50), (0usize..4), (0u8..3)).prop_map(|(nth, col, val)| Op::SetCell {
            nth,
            col,
            val
        }),
    ];
    proptest::collection::vec(op, 0..n)
}

fn apply(table: &mut Table, det: &mut IncrementalDetector, op: &Op) {
    let ids = table.row_ids();
    if ids.is_empty() {
        return;
    }
    match op {
        Op::InsertCopyOf(n) => {
            let donor = ids[n % ids.len()];
            let row: Vec<Value> = table.get(donor).unwrap().to_vec();
            let id = table.insert(row.clone()).unwrap();
            det.insert(id, &row);
        }
        Op::DeleteNth(n) => {
            let victim = ids[n % ids.len()];
            let old = table.delete(victim).unwrap();
            det.delete(victim, &old);
        }
        Op::SetCell { nth, col, val } => {
            let target = ids[nth % ids.len()];
            let col_letter = ["a", "b", "c", "d"][*col];
            let new_val = Value::str(format!("{col_letter}{val}"));
            let before: Vec<Value> = table.get(target).unwrap().to_vec();
            table.update_cell(target, *col, new_val).unwrap();
            let after: Vec<Value> = table.get(target).unwrap().to_vec();
            det.update(target, &before, &after);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_matches_batch_after_any_stream(
        table in arb_table(30),
        cfds in arb_cfds(),
        ops in arb_ops(25),
    ) {
        let mut table = table;
        let mut det = IncrementalDetector::build(&table, &cfds).unwrap();
        for op in &ops {
            apply(&mut table, &mut det, op);
        }
        let batch = detect_native(&table, &cfds).unwrap().normalized();
        let inc = det.report().normalized();
        prop_assert_eq!(&batch, &inc);
        prop_assert_eq!(batch.len() as u64, det.total_violations());
        for (row, vio) in batch.vio.iter() {
            prop_assert_eq!(det.vio_of(row), vio);
        }
        // Rows the batch does not mention have vio 0.
        for id in table.row_ids() {
            if !batch.vio.contains(id) {
                prop_assert_eq!(det.vio_of(id), 0);
            }
        }
    }

    #[test]
    fn update_then_revert_is_identity(
        table in arb_table(25),
        cfds in arb_cfds(),
        nth in 0usize..25,
        col in 0usize..4,
    ) {
        let mut table = table;
        let ids = table.row_ids();
        prop_assume!(!ids.is_empty());
        let target = ids[nth % ids.len()];
        let mut det = IncrementalDetector::build(&table, &cfds).unwrap();
        let total_before = det.total_violations();

        let before: Vec<Value> = table.get(target).unwrap().to_vec();
        let mut after = before.clone();
        after[col] = Value::str("zz-unique");
        table.update_cell(target, col, after[col].clone()).unwrap();
        det.update(target, &before, &after);

        table.update_cell(target, col, before[col].clone()).unwrap();
        det.update(target, &after, &before);

        prop_assert_eq!(det.total_violations(), total_before);
        let batch = detect_native(&table, &cfds).unwrap().normalized();
        prop_assert_eq!(batch, det.report().normalized());
    }
}
