//! The explorer's numbers must agree with the detector's: drill-down
//! violation counts, inspection verdicts and review bookkeeping are views
//! over the same report.

use semandaq::datagen::dirty_customers;
use semandaq::detect::detect_native;
use semandaq::explore::{inspect_tuple, NavigationSession, ReviewSession, ReviewState};
use semandaq::repair::{batch_repair, RepairConfig};

#[test]
fn navigation_counts_match_report() {
    let w = dirty_customers(400, 0.06, 91);
    let t = w.db.table("customer").unwrap();
    let report = detect_native(t, &w.cfds).unwrap();
    let nav = NavigationSession::new(t, &w.cfds, &report).unwrap();

    // Level 1 totals == sum of per-CFD counts.
    let fd_total: usize = nav.fds().iter().map(|e| e.violations).sum();
    let report_total: usize = report.per_cfd.values().sum();
    assert_eq!(fd_total, report_total);

    // Level 2 per-pattern counts equal the report's per-CFD counts.
    for fd in nav.fds() {
        for p in nav.patterns(fd.idx) {
            assert_eq!(
                p.violations,
                report.per_cfd.get(&p.cfd_idx).copied().unwrap_or(0)
            );
        }
    }
}

#[test]
fn drilldown_level_invariants() {
    let w = dirty_customers(300, 0.08, 92);
    let t = w.db.table("customer").unwrap();
    let report = detect_native(t, &w.cfds).unwrap();
    let nav = NavigationSession::new(t, &w.cfds, &report).unwrap();

    for fd in nav.fds() {
        for p in nav.patterns(fd.idx) {
            let lhs = nav.lhs_matches(p.cfd_idx);
            for e in lhs.iter().take(5) {
                // Tuples in a key group ≥ tuples flagged as violating.
                assert!(e.violating <= e.tuples);
                let rhs = nav.rhs_values(p.cfd_idx, &e.key);
                // RHS tuple counts sum to the group size.
                let total: usize = rhs.iter().map(|r| r.tuples).sum();
                assert_eq!(total, e.tuples, "RHS partition must cover the group");
                // Level-5 tuples per RHS value match the advertised counts.
                for r in &rhs {
                    let tuples = nav.tuples(p.cfd_idx, &e.key, &r.value);
                    assert_eq!(tuples.len(), r.tuples);
                }
            }
        }
    }
}

#[test]
fn inspection_agrees_with_vio() {
    let w = dirty_customers(250, 0.06, 93);
    let t = w.db.table("customer").unwrap();
    let report = detect_native(t, &w.cfds).unwrap();
    for (id, _) in t.iter().take(100) {
        let rel = inspect_tuple(t, &w.cfds, &report, id).unwrap();
        let inspected_dirty = rel.iter().any(|r| r.violated);
        assert_eq!(
            inspected_dirty,
            report.vio_of(id) > 0,
            "inspection and vio(t) disagree on {id:?}"
        );
    }
}

#[test]
fn review_accept_all_keeps_database_clean() {
    let mut w = dirty_customers(200, 0.05, 94);
    let result = batch_repair(&mut w.db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
    assert!(result.residual.is_empty());
    let n = {
        let mut session =
            ReviewSession::new(&mut w.db, "customer", &w.cfds, &result.changes).unwrap();
        let n = session.entries().len();
        for i in 0..n {
            session.accept(i).unwrap();
        }
        assert!(session
            .entries()
            .iter()
            .all(|e| e.state == ReviewState::Accepted));
        assert_eq!(session.current_violations(), 0);
        n
    };
    assert!(n > 0);
    assert!(detect_native(w.db.table("customer").unwrap(), &w.cfds)
        .unwrap()
        .is_empty());
}

#[test]
fn review_override_then_correct_value_restores_cleanliness() {
    let mut w = dirty_customers(200, 0.05, 95);
    let result = batch_repair(&mut w.db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
    let mut session = ReviewSession::new(&mut w.db, "customer", &w.cfds, &result.changes).unwrap();
    let proposed = session.entries()[0].proposed.clone();
    // Override with junk, then override back with the proposal.
    session
        .override_with(0, semandaq::minidb::Value::str("JUNKVALUE"))
        .unwrap();
    let dirty_now = session.current_violations();
    session.override_with(0, proposed).unwrap();
    assert_eq!(session.current_violations(), 0);
    assert!(dirty_now >= session.current_violations());
}
