//! Properties of the repair engine: repaired instances satisfy Σ, repair
//! is deterministic, incremental repair agrees with the clean-data
//! consensus, and the cost model behaves as [8] describes.

mod common;

use common::{arb_cfds, arb_table, db_with};
use proptest::prelude::*;
use semandaq::cfd::{satisfiability::check_consistency, DomainSpec};
use semandaq::datagen::dirty_customers;
use semandaq::detect::detect_native;
use semandaq::minidb::Value;
use semandaq::repair::{batch_repair, incremental_repair, score_repair, RepairConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn repair_yields_sigma_satisfying_instance(
        table in arb_table(30),
        cfds in arb_cfds(),
    ) {
        // Only consistent constraint sets are repairable in principle.
        let verdict = check_consistency(&cfds, &DomainSpec::all_infinite()).unwrap();
        prop_assume!(verdict.is_consistent());
        let mut db = db_with(table);
        let result = batch_repair(&mut db, "r", &cfds, &RepairConfig::default()).unwrap();
        prop_assert!(
            result.residual.is_empty(),
            "residual violations: {:?}",
            result.residual.violations
        );
        let after = detect_native(db.table("r").unwrap(), &cfds).unwrap();
        prop_assert!(after.is_empty());
    }

    #[test]
    fn repair_cost_is_nonnegative_and_bounded_by_changes(
        table in arb_table(25),
        cfds in arb_cfds(),
    ) {
        let verdict = check_consistency(&cfds, &DomainSpec::all_infinite()).unwrap();
        prop_assume!(verdict.is_consistent());
        let mut db = db_with(table);
        let result = batch_repair(&mut db, "r", &cfds, &RepairConfig::default()).unwrap();
        prop_assert!(result.total_cost >= 0.0);
        // Normalized distances are ≤ 1 and weights are 1, so the cost of a
        // run never exceeds its change count.
        prop_assert!(result.total_cost <= result.changes.len() as f64 + 1e-9);
    }
}

#[test]
fn repair_never_touches_unconstrained_columns() {
    let w = dirty_customers(300, 0.08, 21);
    let mut db = w.db;
    let result = batch_repair(&mut db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
    assert!(result.residual.is_empty());
    // NAME (col 0) and AC (col 6) are not mentioned by the canonical CFDs.
    for c in &result.changes {
        assert!(
            c.col != 0 && c.col != 6,
            "unconstrained column changed: {c:?}"
        );
    }
}

#[test]
fn repair_quality_reasonable_at_moderate_noise() {
    let w = dirty_customers(1_000, 0.05, 22);
    let dirty = w.db.table("customer").unwrap().clone();
    let mut db = w.db;
    let result = batch_repair(&mut db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
    assert!(result.residual.is_empty());
    let q = score_repair(&dirty, db.table("customer").unwrap(), &w.clean);
    // Calibrated bands, not paper numbers. Two structural ceilings apply:
    // ZIP errors (~1/5 of the noise) move rows into singleton groups no
    // CFD can see, and swapped-in CC/CNT values create genuinely ambiguous
    // violations where the cost model legitimately fixes the other cell.
    // E5 in EXPERIMENTS.md tracks these numbers across noise rates.
    assert!(
        q.precision_loc > 0.5,
        "location precision {}",
        q.precision_loc
    );
    assert!(q.recall_loc > 0.35, "location recall {}", q.recall_loc);
    assert!(q.recall > 0.2, "value recall {}", q.recall);
}

#[test]
fn weights_steer_resolution_choices() {
    // Two tuples disagree on CITY for the same (CNT, ZIP). With uniform
    // weights the majority/cheapest wins; pinning one side with a high
    // weight forces the other to change.
    let build = || {
        let mut db = semandaq::minidb::Database::new();
        db.execute("CREATE TABLE customer (NAME TEXT, CNT TEXT, CITY TEXT, ZIP TEXT, STR TEXT, CC TEXT, AC TEXT)").unwrap();
        db.execute(
            "INSERT INTO customer VALUES \
             ('a','UK','EDI','EH4','s','44','131'), \
             ('b','UK','LDN','EH4','s','44','131')",
        )
        .unwrap();
        db
    };
    let cfds = semandaq::cfd::parse::parse_cfds("customer: [CNT, ZIP] -> [CITY]").unwrap();

    let mut weights = semandaq::repair::WeightModel::uniform();
    weights.set_cell(semandaq::minidb::RowId(1), 2, 100.0); // trust row 1's CITY
    let cfg = RepairConfig {
        weights,
        ..RepairConfig::default()
    };
    let mut db = build();
    let r = batch_repair(&mut db, "customer", &cfds, &cfg).unwrap();
    assert!(r.residual.is_empty());
    // Row 0 must have been changed to LDN (the trusted value).
    let t = db.table("customer").unwrap();
    assert_eq!(
        t.get(semandaq::minidb::RowId(0)).unwrap()[2],
        Value::str("LDN")
    );
    assert_eq!(
        t.get(semandaq::minidb::RowId(1)).unwrap()[2],
        Value::str("LDN")
    );
}

#[test]
fn incremental_repair_matches_clean_consensus() {
    use semandaq::datagen::{generate_customers, CustomerConfig};
    let clean = generate_customers(&CustomerConfig {
        rows: 500,
        ..CustomerConfig::default()
    });
    let mut db = semandaq::minidb::Database::new();
    db.register_table(clean.clone());
    let cfds = semandaq::datagen::canonical_cfds();

    // Insert 10 dirty copies; incremental repair must restore each to the
    // donor's values on the corrupted attribute.
    let donors: Vec<_> = clean
        .iter()
        .take(10)
        .map(|(id, r)| (id, r.to_vec()))
        .collect();
    let mut delta = Vec::new();
    for (k, (_, row)) in donors.iter().enumerate() {
        let mut dirty_row = row.clone();
        dirty_row[2] = Value::str(format!("BAD{k}"));
        delta.push(db.insert_row("customer", dirty_row).unwrap());
    }
    let result =
        incremental_repair(&mut db, "customer", &cfds, &delta, &RepairConfig::default()).unwrap();
    assert!(result.residual.is_empty());
    for (id, (_, donor_row)) in delta.iter().zip(&donors) {
        let fixed = db.table("customer").unwrap().get(*id).unwrap();
        assert_eq!(fixed[2], donor_row[2], "city restored from consensus");
    }
}

#[test]
fn batch_and_incremental_agree_on_delta_scenarios() {
    use semandaq::datagen::{generate_customers, CustomerConfig};
    let clean = generate_customers(&CustomerConfig {
        rows: 300,
        ..CustomerConfig::default()
    });
    let cfds = semandaq::datagen::canonical_cfds();
    let mk_dirty = |db: &mut semandaq::minidb::Database| {
        let donor_row: Vec<Value> = db
            .table("customer")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .1
            .to_vec();
        let mut row = donor_row;
        row[1] = Value::str("XX"); // break CC → CNT
        db.insert_row("customer", row).unwrap()
    };
    // Incremental path.
    let mut db1 = semandaq::minidb::Database::new();
    db1.register_table(clean.clone());
    let id1 = mk_dirty(&mut db1);
    incremental_repair(
        &mut db1,
        "customer",
        &cfds,
        &[id1],
        &RepairConfig::default(),
    )
    .unwrap();
    // Batch path.
    let mut db2 = semandaq::minidb::Database::new();
    db2.register_table(clean);
    let id2 = mk_dirty(&mut db2);
    batch_repair(&mut db2, "customer", &cfds, &RepairConfig::default()).unwrap();
    // Both end Σ-clean and agree on the repaired tuple.
    assert!(detect_native(db1.table("customer").unwrap(), &cfds)
        .unwrap()
        .is_empty());
    assert!(detect_native(db2.table("customer").unwrap(), &cfds)
        .unwrap()
        .is_empty());
    assert_eq!(
        db1.table("customer").unwrap().get(id1).unwrap(),
        db2.table("customer").unwrap().get(id2).unwrap()
    );
}
