//! Long randomized Data-Monitor sessions: the monitor's incremental view
//! of data quality must track batch detection through mode switches,
//! repairs-on-arrival, and mixed update streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semandaq::datagen::{canonical_cfds, generate_customers, CustomerConfig};
use semandaq::detect::detect_native;
use semandaq::minidb::{Database, Value};
use semandaq::system::{DataMonitor, MonitorMode, Update};

fn monitor(rows: usize, mode: MonitorMode) -> DataMonitor {
    let t = generate_customers(&CustomerConfig {
        rows,
        ..CustomerConfig::default()
    });
    let mut db = Database::new();
    db.register_table(t);
    DataMonitor::new(db, "customer", canonical_cfds(), mode).unwrap()
}

fn random_update(m: &DataMonitor, rng: &mut StdRng, step: usize) -> Option<Update> {
    let ids = m.database().table("customer").unwrap().row_ids();
    if ids.is_empty() {
        return None;
    }
    Some(match step % 4 {
        0 => {
            // dirty insert (copy + corrupt CITY)
            let donor = ids[rng.gen_range(0..ids.len())];
            let mut row: Vec<Value> = m
                .database()
                .table("customer")
                .unwrap()
                .get(donor)
                .unwrap()
                .to_vec();
            row[2] = Value::str(format!("X{step}"));
            Update::Insert(row)
        }
        1 => Update::Delete(ids[rng.gen_range(0..ids.len())]),
        2 => {
            // clean insert (exact copy)
            let donor = ids[rng.gen_range(0..ids.len())];
            let row: Vec<Value> = m
                .database()
                .table("customer")
                .unwrap()
                .get(donor)
                .unwrap()
                .to_vec();
            Update::Insert(row)
        }
        _ => Update::SetCell {
            row: ids[rng.gen_range(0..ids.len())],
            col: rng.gen_range(1..6),
            value: Value::str(format!("Y{step}")),
        },
    })
}

#[test]
fn detect_only_stream_tracks_batch_detection() {
    let mut m = monitor(200, MonitorMode::DetectOnly);
    let mut rng = StdRng::seed_from_u64(71);
    for step in 0..120 {
        if let Some(u) = random_update(&m, &mut rng, step) {
            m.apply(u).unwrap();
        }
        if step % 30 == 29 {
            let batch = detect_native(m.database().table("customer").unwrap(), &canonical_cfds())
                .unwrap()
                .normalized();
            assert_eq!(batch, m.report().normalized(), "drift at step {step}");
            assert_eq!(batch.len() as u64, m.violations());
        }
    }
}

#[test]
fn repair_on_arrival_keeps_inserts_clean() {
    let mut m = monitor(300, MonitorMode::RepairOnArrival);
    let mut rng = StdRng::seed_from_u64(73);
    // Only inserts (dirty and clean): the monitor must keep violations at 0.
    for step in 0..40 {
        let ids = m.database().table("customer").unwrap().row_ids();
        let donor = ids[rng.gen_range(0..ids.len())];
        let mut row: Vec<Value> = m
            .database()
            .table("customer")
            .unwrap()
            .get(donor)
            .unwrap()
            .to_vec();
        if step % 2 == 0 {
            row[1] = Value::str("ZZ"); // break the CC → CNT binding
        }
        let out = m.apply(Update::Insert(row)).unwrap();
        assert_eq!(out.violations, 0, "arrival {step} left violations");
    }
    let batch = detect_native(m.database().table("customer").unwrap(), &canonical_cfds()).unwrap();
    assert!(batch.is_empty());
}

#[test]
fn mode_switch_midstream_is_safe() {
    let mut m = monitor(150, MonitorMode::DetectOnly);
    let mut rng = StdRng::seed_from_u64(79);
    for step in 0..30 {
        if let Some(u) = random_update(&m, &mut rng, step) {
            m.apply(u).unwrap();
        }
    }
    let dirty_before = m.violations();
    assert!(dirty_before > 0, "stream must have dirtied something");
    // Switch to repair mode: *new* dirty arrivals get fixed; the backlog
    // stays (the paper repairs the delta, not the base).
    m.set_mode(MonitorMode::RepairOnArrival);
    let ids = m.database().table("customer").unwrap().row_ids();
    let donor_row: Vec<Value> = m
        .database()
        .table("customer")
        .unwrap()
        .get(ids[0])
        .unwrap()
        .to_vec();
    let mut dirty_row = donor_row;
    dirty_row[2] = Value::str("FRESHDIRT");
    let out = m.apply(Update::Insert(dirty_row)).unwrap();
    assert!(
        out.violations <= dirty_before,
        "repaired arrival must not grow the backlog"
    );
    // Consistency with batch after everything.
    let batch = detect_native(m.database().table("customer").unwrap(), &canonical_cfds())
        .unwrap()
        .normalized();
    assert_eq!(batch, m.report().normalized());
}
