//! Property: an incrementally-patched columnar snapshot is indistinguishable
//! from a fresh encode. For random update streams (inserts with novel
//! values and all-NULL rows, deletes, cell overwrites incl. NULLing), the
//! patched snapshot's `detect_on_snapshot` report equals a fresh
//! `detect_native` after *every* step — and a zero-threshold cache, which
//! re-encodes on every mutation (the delta-threshold fallback path),
//! produces the identical report at every step too.

mod common;

use common::{arb_cfds, arb_table, COLS};
use proptest::prelude::*;
use semandaq::colstore::{detect_cached, detect_on_snapshot, SnapshotCache};
use semandaq::detect::detect_native;
use semandaq::minidb::{RowId, Schema, Table, Value};

/// One step of a random update stream. Row/column choices are indexes
/// reduced modulo the live population at apply time, so every generated
/// stream is applicable to every generated table.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a row of domain values, NULLs, or novel (never-seen) values.
    Insert(Vec<Cell>),
    /// Insert an all-NULL row.
    InsertAllNull,
    /// Delete a live row.
    Delete(usize),
    /// Overwrite one cell.
    SetCell { row: usize, col: usize, val: Cell },
}

#[derive(Debug, Clone)]
enum Cell {
    /// A value from the small shared domain (collides with existing rows).
    Domain(usize),
    /// A fresh value absent from every dictionary (forces interning).
    Novel,
    Null,
}

impl Cell {
    fn value(&self, col: usize, fresh: &mut u32) -> Value {
        match self {
            Cell::Domain(i) => Value::str(format!("{}{}", ["a", "b", "c", "d"][col], i % 3)),
            Cell::Novel => {
                *fresh += 1;
                Value::str(format!("novel{fresh}"))
            }
            Cell::Null => Value::Null,
        }
    }
}

fn arb_cell() -> impl Strategy<Value = Cell> {
    prop_oneof![
        5 => (0usize..3).prop_map(Cell::Domain),
        2 => Just(Cell::Novel),
        1 => Just(Cell::Null),
    ]
}

fn arb_ops(max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        3 => proptest::collection::vec(arb_cell(), 4).prop_map(Op::Insert),
        1 => Just(Op::InsertAllNull),
        2 => (0usize..64).prop_map(Op::Delete),
        4 => ((0usize..64), (0usize..4), arb_cell())
            .prop_map(|(row, col, val)| Op::SetCell { row, col, val }),
    ];
    proptest::collection::vec(op, 1..max_ops)
}

/// Apply `op` to `table`, reporting the mutation to every cache in
/// `caches`. Returns `false` when the op was inapplicable (e.g. delete on
/// an empty table) and was skipped.
fn apply(table: &mut Table, caches: &mut [&mut SnapshotCache], op: &Op, fresh: &mut u32) -> bool {
    match op {
        Op::Insert(cells) => {
            let row: Vec<Value> = cells
                .iter()
                .enumerate()
                .map(|(c, cell)| cell.value(c, fresh))
                .collect();
            let id = table.insert(row).unwrap();
            for cache in caches {
                cache.note_insert(table, id);
            }
        }
        Op::InsertAllNull => {
            let id = table.insert(vec![Value::Null; 4]).unwrap();
            for cache in caches {
                cache.note_insert(table, id);
            }
        }
        Op::Delete(i) => {
            let ids = table.row_ids();
            if ids.is_empty() {
                return false;
            }
            let id = ids[i % ids.len()];
            table.delete(id).unwrap();
            for cache in caches {
                cache.note_delete(table, id);
            }
        }
        Op::SetCell { row, col, val } => {
            let ids = table.row_ids();
            if ids.is_empty() {
                return false;
            }
            let id = ids[row % ids.len()];
            table.update_cell(id, *col, val.value(*col, fresh)).unwrap();
            for cache in caches {
                cache.note_set_cell(table, id, *col);
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every step of a random update stream, the patched snapshot
    /// detects exactly what a fresh native scan detects — and so does the
    /// zero-threshold cache that rides the full-rebuild fallback.
    #[test]
    fn patched_snapshot_equals_fresh_detect_after_every_step(
        table in arb_table(24),
        cfds in arb_cfds(),
        ops in arb_ops(24),
    ) {
        let mut table = table;
        let mut patched = SnapshotCache::new();
        let mut rebuilt = SnapshotCache::new().with_delta_threshold(0.0);
        let mut memoed = SnapshotCache::new();
        patched.snapshot(&table);
        rebuilt.snapshot(&table);
        memoed.snapshot(&table);
        let mut fresh = 0u32;
        for op in &ops {
            if !apply(
                &mut table,
                &mut [&mut patched, &mut rebuilt, &mut memoed],
                op,
                &mut fresh,
            ) {
                continue;
            }
            let want = detect_native(&table, &cfds).unwrap().normalized();
            let got = detect_on_snapshot(&patched.snapshot(&table), &cfds)
                .unwrap()
                .normalized();
            prop_assert_eq!(&got, &want, "patched snapshot diverged after {:?}", op);
            let fallback = detect_on_snapshot(&rebuilt.snapshot(&table), &cfds)
                .unwrap()
                .normalized();
            prop_assert_eq!(&fallback, &want, "threshold fallback diverged after {:?}", op);
            // The memoized path (per-CFD fragments replayed while their
            // columns are untouched) must agree at every step too.
            let memo = detect_cached(&mut memoed, &table, &cfds).unwrap().normalized();
            prop_assert_eq!(&memo, &want, "memoized detect diverged after {:?}", op);
        }
        // The caches took genuinely different paths to the same answers.
        prop_assert_eq!(patched.encodes(), 1, "stream must ride the patch path");
        prop_assert_eq!(rebuilt.patches(), 0, "zero threshold must never patch");
    }

    /// Snapshot row order is an implementation detail: a patched snapshot
    /// (swap-removed, append-ordered) and a fresh arena-ordered encode
    /// carry the same rows and values.
    #[test]
    fn patched_snapshot_content_matches_fresh_encode(
        table in arb_table(16),
        ops in arb_ops(16),
    ) {
        use semandaq::colstore::Snapshot;
        let mut table = table;
        let mut cache = SnapshotCache::new();
        cache.snapshot(&table);
        let mut fresh = 0u32;
        for op in &ops {
            apply(&mut table, &mut [&mut cache], op, &mut fresh);
        }
        let patched = cache.snapshot(&table);
        let reference = Snapshot::of(&table);
        prop_assert_eq!(patched.n_rows(), reference.n_rows());
        let mut patched_rows: Vec<(RowId, Vec<Value>)> = (0..patched.n_rows())
            .map(|p| (patched.row_id(p), (0..4).map(|c| patched.column(c).value_at(p)).collect()))
            .collect();
        patched_rows.sort_by_key(|(id, _)| *id);
        let reference_rows: Vec<(RowId, Vec<Value>)> = (0..reference.n_rows())
            .map(|p| (reference.row_id(p), (0..4).map(|c| reference.column(c).value_at(p)).collect()))
            .collect();
        prop_assert_eq!(patched_rows, reference_rows);
    }
}

/// Long-stream determinism: past the delta threshold the cache rebuilds
/// (full re-encode) and keeps answering correctly — the crossover is
/// invisible to the consumer.
#[test]
fn threshold_crossing_rebuilds_and_stays_correct() {
    use semandaq::cfd::parse::parse_cfds;
    let mut table = Table::new("r", Schema::of_strings(&COLS));
    for i in 0..40 {
        table
            .insert(vec![
                Value::str(format!("a{}", i % 3)),
                Value::str(format!("b{}", i % 4)),
                Value::str(format!("c{}", i % 2)),
                Value::str(format!("d{}", i % 5)),
            ])
            .unwrap();
    }
    let cfds = parse_cfds("r: [A] -> [B]\nr: [A='a0'] -> [C='c0']\nr: [B, C] -> [D]").unwrap();
    let mut cache = SnapshotCache::new();
    cache.snapshot(&table);
    // 600 single-cell mutations: far beyond the 256-patch floor, so the
    // cache must cross the threshold and rebuild at least once.
    for step in 0..600usize {
        let ids = table.row_ids();
        let id = ids[step % ids.len()];
        let col = step % 4;
        let val = Value::str(format!("{}{}", ["a", "b", "c", "d"][col], step % 6));
        table.update_cell(id, col, val).unwrap();
        cache.note_set_cell(&table, id, col);
        if step % 97 == 0 {
            let got = detect_on_snapshot(&cache.snapshot(&table), &cfds)
                .unwrap()
                .normalized();
            let want = detect_native(&table, &cfds).unwrap().normalized();
            assert_eq!(got, want, "diverged at step {step}");
        }
    }
    let got = detect_on_snapshot(&cache.snapshot(&table), &cfds)
        .unwrap()
        .normalized();
    let want = detect_native(&table, &cfds).unwrap().normalized();
    assert_eq!(got, want);
    assert!(
        cache.encodes() >= 2,
        "600 patches must cross the delta threshold at least once"
    );
    assert!(cache.patches() > 0, "and still patch between rebuilds");
}
