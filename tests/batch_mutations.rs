//! Property: a random [`MutationBatch`] applied through `apply_batch`
//! yields exactly the state the same mutations applied one-by-one yield —
//! identical tables, identical detection reports, and snapshot contents
//! that detect identically to a fresh columnar encode — on both the
//! single-node server and the sharded cluster.

mod common;

use common::{arb_cfds, arb_table, COLS};
use proptest::prelude::*;
use semandaq::api::{apply_mutation, Mutation, MutationBatch, QualityBackend};
use semandaq::cluster::{HashRouter, RoundRobinRouter, ShardRouter, ShardedQualityServer};
use semandaq::colstore::detect_columnar;
use semandaq::minidb::{Database, RowId, Table, Value};
use semandaq::system::{DetectorKind, QualityServer, ServerConfig};

fn router(kind: usize) -> Box<dyn ShardRouter> {
    match kind % 3 {
        0 => Box::new(RoundRobinRouter::default()),
        1 => Box::new(HashRouter::default()),
        _ => Box::new(HashRouter::new(vec![0])),
    }
}

/// Raw generated op: row/col picks are indices, resolved against the
/// evolving live-id simulation when the concrete batch is built.
#[derive(Clone, Debug)]
enum RawOp {
    Insert(Vec<u8>),
    Delete(usize),
    Set { row: usize, col: usize, digit: u8 },
}

fn cell(col: usize, digit: u8) -> Value {
    if digit == 3 {
        Value::Null
    } else {
        Value::str(format!("{}{digit}", ["a", "b", "c", "d"][col]))
    }
}

fn arb_raw_ops(max: usize) -> impl Strategy<Value = Vec<RawOp>> {
    let op = prop_oneof![
        3 => proptest::collection::vec(0u8..4, 4).prop_map(RawOp::Insert),
        1 => (0usize..1024).prop_map(RawOp::Delete),
        3 => ((0usize..1024), 0usize..4, 0u8..4)
            .prop_map(|(row, col, digit)| RawOp::Set { row, col, digit }),
    ];
    proptest::collection::vec(op, 1..max)
}

/// Resolve raw ops into a concrete, valid mutation sequence against the
/// initial table: a simulated live-id list tracks inserts (which are
/// assigned the next arena id) and deletes, so deletes and cell-sets can
/// target rows created earlier in the same batch — including the
/// insert-then-delete shape the snapshot cache must survive.
fn resolve(table: &Table, raw: &[RawOp]) -> Vec<Mutation> {
    let mut live: Vec<RowId> = table.row_ids();
    let mut next = table.arena_size() as u64;
    let mut out = Vec::with_capacity(raw.len());
    for op in raw {
        match op {
            RawOp::Insert(digits) => {
                let row: Vec<Value> = digits
                    .iter()
                    .enumerate()
                    .map(|(c, &d)| cell(c, d))
                    .collect();
                live.push(RowId(next));
                next += 1;
                out.push(Mutation::Insert(row));
            }
            RawOp::Delete(k) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(k % live.len());
                out.push(Mutation::Delete(id));
            }
            RawOp::Set { row, col, digit } => {
                if live.is_empty() {
                    continue;
                }
                let id = live[row % live.len()];
                out.push(Mutation::SetCell {
                    row: id,
                    col: col % 4,
                    value: cell(col % 4, *digit),
                });
            }
        }
    }
    out
}

/// The per-mutation reference arm, written once over the unified API —
/// the same calls work on the server and the cluster.
fn apply_one_by_one(b: &mut dyn QualityBackend, muts: &[Mutation]) {
    for m in muts {
        apply_mutation(b, m.clone()).expect("mutation applies");
    }
}

fn rows_of(t: &Table) -> Vec<(RowId, Vec<Value>)> {
    t.iter().map(|(id, r)| (id, r.to_vec())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn batched_equals_one_by_one_on_the_single_node_server(
        table in arb_table(40),
        cfds in arb_cfds(),
        raw in arb_raw_ops(30),
    ) {
        let muts = resolve(&table, &raw);
        let mut db = Database::new();
        db.register_table(table.clone());
        let make = || {
            QualityServer::new(db.clone(), "r").unwrap().with_config(ServerConfig {
                detector: DetectorKind::Columnar,
                ..ServerConfig::default()
            })
        };
        let mut batched = make();
        let mut stepped = make();
        for s in [&mut batched, &mut stepped] {
            s.engine_mut().register(cfds.clone()).unwrap();
            s.detect().unwrap(); // warm the snapshot caches
        }
        let out = batched.apply_batch(MutationBatch { mutations: muts.clone() }).unwrap();
        prop_assert_eq!(out.applied, muts.len());
        apply_one_by_one(&mut stepped, &muts);
        // Identical tables...
        prop_assert_eq!(rows_of(batched.table().unwrap()), rows_of(stepped.table().unwrap()));
        // ...identical reports, and both equal a fresh columnar encode of
        // the mutated table — which pins the *patched snapshot contents*,
        // since the cached detect rides them.
        let fresh = detect_columnar(batched.table().unwrap(), &cfds).unwrap().normalized();
        let b = batched.detect().unwrap().normalized();
        let s = stepped.detect().unwrap().normalized();
        prop_assert_eq!(&b, &s);
        prop_assert_eq!(&b, &fresh);
    }

    #[test]
    fn batched_equals_one_by_one_on_the_sharded_cluster(
        table in arb_table(40),
        cfds in arb_cfds(),
        shards in 1usize..=5,
        router_kind in 0usize..3,
        raw in arb_raw_ops(30),
    ) {
        let muts = resolve(&table, &raw);
        let mut batched =
            ShardedQualityServer::partition(&table, shards, router(router_kind)).unwrap();
        let mut stepped =
            ShardedQualityServer::partition(&table, shards, router(router_kind)).unwrap();
        for c in [&mut batched, &mut stepped] {
            c.register_cfds(cfds.clone()).unwrap();
            c.detect().unwrap(); // warm every shard snapshot
        }
        let out = batched.apply_batch(MutationBatch { mutations: muts.clone() }).unwrap();
        prop_assert_eq!(out.applied, muts.len());
        apply_one_by_one(&mut stepped, &muts);
        prop_assert_eq!(
            rows_of(&batched.merged_table().unwrap()),
            rows_of(&stepped.merged_table().unwrap())
        );
        let fresh = detect_columnar(&batched.merged_table().unwrap(), &cfds)
            .unwrap()
            .normalized();
        let b = batched.detect().unwrap().normalized();
        let s = stepped.detect().unwrap().normalized();
        prop_assert_eq!(&b, &s);
        prop_assert_eq!(&b, &fresh);
    }
}

#[test]
fn insert_then_delete_in_one_batch_is_survivable() {
    // The snapshot cache cannot replay values of a row that was inserted
    // and deleted within the same batch: it must fall back to a rebuild,
    // never serve a wrong snapshot.
    let mut t = Table::new("r", semandaq::minidb::Schema::of_strings(&COLS));
    for d in 0..3u8 {
        t.insert((0..4).map(|c| cell(c, d)).collect()).unwrap();
    }
    let cfds = common::cfd_pool();
    let mut db = Database::new();
    db.register_table(t.clone());
    let mut s = QualityServer::new(db, "r")
        .unwrap()
        .with_config(ServerConfig {
            detector: DetectorKind::Columnar,
            ..ServerConfig::default()
        });
    s.engine_mut().register(cfds.clone()).unwrap();
    s.detect().unwrap();
    let ghost = RowId(t.arena_size() as u64);
    s.apply_batch(MutationBatch {
        mutations: vec![
            Mutation::Insert((0..4).map(|c| cell(c, 1)).collect()),
            Mutation::Delete(ghost),
            Mutation::SetCell {
                row: RowId(0),
                col: 1,
                value: cell(1, 2),
            },
        ],
    })
    .unwrap();
    let fresh = detect_columnar(s.table().unwrap(), &cfds)
        .unwrap()
        .normalized();
    assert_eq!(s.detect().unwrap().normalized(), fresh);
}
