//! Property tests for the repair cost model: the Damerau–Levenshtein
//! distance must behave like a metric (the cost model's ranking guarantees
//! in Fig. 5's alternatives depend on it) and the normalized form must
//! stay in the unit interval.

use proptest::prelude::*;
use semandaq::minidb::Value;
use semandaq::repair::{damerau_levenshtein, normalized_distance};

fn short_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-c ]{0,8}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn identity_of_indiscernibles(a in short_string(), b in short_string()) {
        let d = damerau_levenshtein(&a, &b);
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn symmetry(a in short_string(), b in short_string()) {
        prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
    }

    #[test]
    fn triangle_inequality(
        a in short_string(),
        b in short_string(),
        c in short_string(),
    ) {
        // The OSA variant satisfies the triangle inequality over this
        // restricted alphabet-and-length regime; exercise it broadly.
        let ab = damerau_levenshtein(&a, &b);
        let bc = damerau_levenshtein(&b, &c);
        let ac = damerau_levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc, "d({a:?},{c:?})={ac} > {ab}+{bc}");
    }

    #[test]
    fn bounded_by_longer_length(a in short_string(), b in short_string()) {
        let d = damerau_levenshtein(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
        // and at least the length difference
        let diff = a.chars().count().abs_diff(b.chars().count());
        prop_assert!(d >= diff);
    }

    #[test]
    fn normalized_distance_is_unit_interval(a in short_string(), b in short_string()) {
        let d = normalized_distance(&Value::str(&a), &Value::str(&b));
        prop_assert!((0.0..=1.0).contains(&d), "{d}");
        prop_assert_eq!(d == 0.0, a == b);
    }

    #[test]
    fn adjacent_transposition_costs_one(s in proptest::string::string_regex("[a-z]{2,8}").expect("valid regex"), i in 0usize..7) {
        let chars: Vec<char> = s.chars().collect();
        prop_assume!(i + 1 < chars.len());
        prop_assume!(chars[i] != chars[i + 1]);
        let mut swapped = chars.clone();
        swapped.swap(i, i + 1);
        let t: String = swapped.into_iter().collect();
        prop_assert_eq!(damerau_levenshtein(&s, &t), 1);
    }
}

#[test]
fn unicode_is_counted_by_chars_not_bytes() {
    // 'ü' is 2 bytes; distance must be 1 substitution, not 2.
    assert_eq!(damerau_levenshtein("müller", "muller"), 1);
    assert_eq!(damerau_levenshtein("東京", "京東"), 1); // transposition
    let d = normalized_distance(&Value::str("東京"), &Value::str("東京都"));
    assert!((d - 1.0 / 3.0).abs() < 1e-9);
}
