//! Property: cluster repair ≡ single-node repair. For every random table,
//! consistent CFD set, router and shard count 1–8,
//! `ShardedQualityServer::repair()` must end with zero violations and a
//! repaired relation equal to `batch_repair` over the same data — same
//! change list, same merged table — plus the structural edges: empty
//! shards, all-clean short-circuit, a conflict that exists *only* across
//! shards, and repair→mutate→repair riding the patched shard snapshots.

mod common;

use common::{arb_cfds, arb_table, db_with, COLS};
use proptest::prelude::*;
use semandaq::cfd::{satisfiability::check_consistency, Cfd, DomainSpec};
use semandaq::cluster::{HashRouter, RoundRobinRouter, ShardRouter, ShardedQualityServer};
use semandaq::colstore::detect_columnar;
use semandaq::minidb::{RowId, Schema, Table, Value};
use semandaq::repair::{batch_repair, RepairConfig};

fn router(kind: usize) -> Box<dyn ShardRouter> {
    match kind % 3 {
        0 => Box::new(RoundRobinRouter::default()),
        1 => Box::new(HashRouter::default()), // whole-row hash
        _ => Box::new(HashRouter::new(vec![0])), // keyed on column A
    }
}

/// Rows by global id — the comparison form for repaired relations.
fn rows_of(t: &Table) -> Vec<(RowId, Vec<Value>)> {
    let mut rows: Vec<(RowId, Vec<Value>)> = t.iter().map(|(id, r)| (id, r.to_vec())).collect();
    rows.sort_by_key(|(id, _)| *id);
    rows
}

/// Repair the table single-node and through a cluster; assert both end
/// violation-free with identical change lists and equal relations.
fn assert_repairs_agree(table: &Table, cfds: &[Cfd], shards: usize, router: Box<dyn ShardRouter>) {
    let mut db = db_with(table.clone());
    let single = batch_repair(&mut db, table.name(), cfds, &RepairConfig::default()).unwrap();

    let mut cluster = ShardedQualityServer::partition(table, shards, router).unwrap();
    cluster.register_cfds(cfds.to_vec()).unwrap();
    let sharded = cluster.repair().unwrap();

    assert!(
        single.residual.is_empty() && sharded.residual.is_empty(),
        "both repairs converge (single: {}, sharded: {})",
        single.residual.len(),
        sharded.residual.len()
    );
    assert_eq!(
        sharded.changes, single.changes,
        "identical change lists (order, values, costs)"
    );
    assert_eq!(sharded.iterations, single.iterations);

    let merged = cluster.merged_table().unwrap();
    assert_eq!(
        rows_of(&merged),
        rows_of(db.table(table.name()).unwrap()),
        "repaired relations equal"
    );
    assert!(
        detect_columnar(&merged, cfds).unwrap().is_empty(),
        "zero violations after sharded repair"
    );
    assert!(cluster.detect().unwrap().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_repair_equals_single_node(
        table in arb_table(30),
        cfds in arb_cfds(),
        shards in 1usize..=8,
        router_kind in 0usize..3,
    ) {
        // Only consistent constraint sets are repairable in principle.
        let verdict = check_consistency(&cfds, &DomainSpec::all_infinite()).unwrap();
        prop_assume!(verdict.is_consistent());
        assert_repairs_agree(&table, &cfds, shards, router(router_kind));
    }
}

#[test]
fn empty_shards_do_not_disturb_repair() {
    // Three rows over eight shards: five shards hold nothing, and the one
    // dirty group is still found and repaired.
    let cfds = semandaq::cfd::parse::parse_cfds("r: [A] -> [B]").unwrap();
    let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
    for v in ["x", "x", "y"] {
        t.insert(vec![Value::str("k"), Value::str(v)]).unwrap();
    }
    assert_repairs_agree(&t, &cfds, 8, Box::new(RoundRobinRouter::default()));
}

#[test]
fn clean_cluster_short_circuits_with_zero_resolve_rounds() {
    let d = semandaq::datagen::dirty_customers(150, 0.0, 61);
    let table = d.db.table("customer").unwrap();
    let mut cluster =
        ShardedQualityServer::partition(table, 3, Box::new(RoundRobinRouter::default())).unwrap();
    cluster.register_cfds(d.cfds.clone()).unwrap();
    let r = cluster.repair().unwrap();
    assert!(r.changes.is_empty(), "nothing to fix");
    assert!(r.residual.is_empty());
    assert_eq!(r.iterations, 1, "the first detect short-circuits the loop");
    assert_eq!(
        cluster.snapshot_encodes(),
        3,
        "one encode per shard, zero patch work"
    );
    // The short-circuit left the relation untouched.
    assert_eq!(rows_of(&cluster.merged_table().unwrap()), rows_of(table));
}

#[test]
fn cross_shard_only_conflict_is_repaired() {
    // One LHS group {v, v, v, w} split maximally by round-robin over four
    // shards: every shard is locally clean, the conflict exists only in
    // the merged view — a shard-local repair would fix nothing.
    let cfds = semandaq::cfd::parse::parse_cfds("r: [A] -> [B]").unwrap();
    let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
    for v in ["v", "v", "v", "w"] {
        t.insert(vec![Value::str("k"), Value::str(v)]).unwrap();
    }
    let mut cluster =
        ShardedQualityServer::partition(&t, 4, Box::new(RoundRobinRouter::default())).unwrap();
    cluster.register_cfds(cfds.clone()).unwrap();
    for s in 0..4 {
        let local = detect_columnar(cluster.shard_table(s), &cfds).unwrap();
        assert!(local.is_empty(), "shard {s} is clean in isolation");
    }
    let r = cluster.repair().unwrap();
    assert!(r.residual.is_empty());
    assert_eq!(r.changes.len(), 1, "the minority member takes the target");
    assert_eq!(r.changes[0].row, RowId(3));
    assert_eq!(r.changes[0].new, Value::str("v"));
    assert!(cluster.detect().unwrap().is_empty());
    assert_repairs_agree(&t, &cfds, 4, Box::new(RoundRobinRouter::default()));
}

#[test]
fn repair_mutate_repair_reuses_patched_snapshots() {
    let d = semandaq::datagen::dirty_customers(300, 0.05, 62);
    let table = d.db.table("customer").unwrap();
    let mut cluster =
        ShardedQualityServer::partition(table, 4, Box::new(HashRouter::new(vec![1]))).unwrap();
    cluster.register_cfds(d.cfds.clone()).unwrap();

    // First repair: pays exactly one encode per shard (the cold detect),
    // then patches through every round.
    let r1 = cluster.repair().unwrap();
    assert!(r1.residual.is_empty());
    assert!(!r1.changes.is_empty());
    let encodes = cluster.snapshot_encodes();
    assert_eq!(encodes, 4, "cold detect encoded each shard once");

    // Corrupt a few cells through the routed mutation surface (patches,
    // never re-encodes), then repair again.
    let ids: Vec<RowId> = cluster.merged_table().unwrap().row_ids();
    for (i, &id) in ids.iter().step_by(37).take(5).enumerate() {
        cluster
            .update_cell(id, 2, Value::str(format!("BROKEN{i}")))
            .unwrap();
    }
    assert!(!cluster.detect().unwrap().is_empty(), "corruption surfaced");
    let r2 = cluster.repair().unwrap();
    assert!(r2.residual.is_empty());
    assert!(!r2.changes.is_empty());
    assert!(cluster.detect().unwrap().is_empty());
    assert_eq!(
        cluster.snapshot_encodes(),
        encodes,
        "mutations and the second repair rode the patched shard snapshots"
    );
}

#[test]
fn customers_repair_equivalence_across_routers_and_shard_counts() {
    let d = semandaq::datagen::dirty_customers(500, 0.05, 63);
    let table = d.db.table("customer").unwrap();
    for (shards, key_cols) in [(2usize, vec![]), (5, vec![1]), (8, vec![1, 3])] {
        assert_repairs_agree(table, &d.cfds, shards, Box::new(HashRouter::new(key_cols)));
    }
    assert_repairs_agree(table, &d.cfds, 7, Box::new(RoundRobinRouter::default()));
}

#[test]
fn repair_respects_config_through_the_cluster() {
    // The similarity ablation must flow through repair_with_config exactly
    // as it does single-node.
    let d = semandaq::datagen::dirty_customers(200, 0.05, 64);
    let table = d.db.table("customer").unwrap();
    let cfg = RepairConfig {
        use_similarity: false,
        ..RepairConfig::default()
    };
    let mut db = d.db.clone();
    let single = batch_repair(&mut db, "customer", &d.cfds, &cfg).unwrap();
    let mut cluster =
        ShardedQualityServer::partition(table, 3, Box::new(RoundRobinRouter::default())).unwrap();
    cluster.register_cfds(d.cfds.clone()).unwrap();
    let sharded = cluster.repair_with_config(&cfg).unwrap();
    assert_eq!(sharded.changes, single.changes);
    assert_eq!(sharded.total_cost, single.total_cost);
    assert!(sharded.residual.is_empty());
}

/// The all-NULL edge: nothing violates, nothing is repaired, on every
/// shard count.
#[test]
fn all_null_instance_repairs_to_nothing() {
    let mut t = Table::new("r", Schema::of_strings(&COLS));
    for _ in 0..10 {
        t.insert(vec![Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
    }
    let cfds = common::cfd_pool();
    for shards in [1usize, 4, 8] {
        let mut c =
            ShardedQualityServer::partition(&t, shards, Box::new(RoundRobinRouter::default()))
                .unwrap();
        c.register_cfds(cfds.clone()).unwrap();
        let r = c.repair().unwrap();
        assert!(r.changes.is_empty(), "{shards} shards");
        assert!(r.residual.is_empty());
    }
}
