//! Property: the sharded quality cluster computes exactly single-node
//! columnar detection — for every table, CFD set (constant + variable,
//! all-NULL and single-group edges included), router, shard count 1–8,
//! and any routed update stream applied after partitioning.

mod common;

use common::{arb_cfds, arb_table, cfd_pool, COLS};
use proptest::prelude::*;
use semandaq::cluster::{HashRouter, RoundRobinRouter, ShardRouter, ShardedQualityServer};
use semandaq::colstore::detect_columnar;
use semandaq::minidb::{Schema, Table, Value};

fn router(kind: usize) -> Box<dyn ShardRouter> {
    match kind % 3 {
        0 => Box::new(RoundRobinRouter::default()),
        1 => Box::new(HashRouter::default()), // whole-row hash
        _ => Box::new(HashRouter::new(vec![0])), // keyed on column A
    }
}

/// One update against both the reference table and the cluster. Row and
/// column picks are indices into the *current* live-row list, so a
/// generated stream stays applicable whatever the interleaving did to the
/// table; `digit == 3` writes NULL.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>),
    Delete(usize),
    Set { row: usize, col: usize, digit: u8 },
}

fn cell(col: usize, digit: u8) -> Value {
    if digit == 3 {
        Value::Null
    } else {
        Value::str(format!("{}{digit}", ["a", "b", "c", "d"][col]))
    }
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        2 => proptest::collection::vec(0u8..4, 4).prop_map(Op::Insert),
        1 => (0usize..1024).prop_map(Op::Delete),
        4 => ((0usize..1024), 0usize..4, 0u8..4)
            .prop_map(|(row, col, digit)| Op::Set { row, col, digit }),
    ];
    proptest::collection::vec(op, 0..max)
}

/// Apply `op` identically to the single-node table and the cluster; the
/// global row ids the two sides assign must stay in lock-step.
fn apply(single: &mut Table, cluster: &mut ShardedQualityServer, op: &Op) {
    let ids = single.row_ids();
    match op {
        Op::Insert(digits) => {
            let row: Vec<Value> = digits
                .iter()
                .enumerate()
                .map(|(c, &d)| cell(c, d))
                .collect();
            let a = single.insert(row.clone()).expect("row fits schema");
            let b = cluster.insert(row).expect("cluster insert");
            assert_eq!(a, b, "global id allocation must mirror single-node");
        }
        Op::Delete(k) => {
            if let Some(&id) = ids.get(k % ids.len().max(1)) {
                single.delete(id).expect("live row");
                cluster.delete(id).expect("cluster delete");
            }
        }
        Op::Set { row, col, digit } => {
            if let Some(&id) = ids.get(row % ids.len().max(1)) {
                let v = cell(*col, *digit);
                single.update_cell(id, *col, v.clone()).expect("live row");
                cluster.update_cell(id, *col, v).expect("cluster update");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_equals_single_node_under_update_streams(
        table in arb_table(40),
        cfds in arb_cfds(),
        shards in 1usize..=8,
        router_kind in 0usize..3,
        ops in arb_ops(30),
    ) {
        let mut single = table.clone();
        let mut cluster =
            ShardedQualityServer::partition(&table, shards, router(router_kind)).unwrap();
        cluster.register_cfds(cfds.clone()).unwrap();
        prop_assert_eq!(cluster.len(), single.len());

        // Fresh partition detects like single-node.
        let sharded = cluster.detect().unwrap().normalized();
        let reference = detect_columnar(&single, &cfds).unwrap().normalized();
        prop_assert_eq!(sharded, reference);

        // ... and stays exact under a routed post-partition update stream.
        for op in &ops {
            apply(&mut single, &mut cluster, op);
        }
        let sharded = cluster.detect().unwrap().normalized();
        let reference = detect_columnar(&single, &cfds).unwrap().normalized();
        prop_assert_eq!(sharded, reference);

        // Steady state: a repeat detect with no interleaved mutation does
        // zero encode work and replays every shard's partials.
        let encodes = cluster.snapshot_encodes();
        let again = cluster.detect().unwrap().normalized();
        let reference = detect_columnar(&single, &cfds).unwrap().normalized();
        prop_assert_eq!(again, reference);
        prop_assert_eq!(cluster.snapshot_encodes(), encodes);
        prop_assert_eq!(cluster.last_detect_stats().partials_computed, 0);
    }
}

#[test]
fn all_null_instance_is_clean_on_every_shard_count() {
    let mut t = Table::new("r", Schema::of_strings(&COLS));
    for _ in 0..12 {
        t.insert(vec![Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
    }
    let cfds = cfd_pool();
    for shards in [1usize, 3, 8] {
        let mut c =
            ShardedQualityServer::partition(&t, shards, Box::new(RoundRobinRouter::default()))
                .unwrap();
        c.register_cfds(cfds.clone()).unwrap();
        let r = c.detect().unwrap();
        assert!(
            r.is_empty(),
            "all-NULL data cannot violate ({shards} shards)"
        );
    }
}

#[test]
fn single_group_split_across_every_shard() {
    // The whole table is one LHS group; round-robin over 4 shards splits
    // it maximally — every conflict is cross-shard, none local.
    let cfds = semandaq::cfd::parse::parse_cfds("r: [A] -> [B]").unwrap();
    let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
    for v in ["v", "v", "v", "w"] {
        t.insert(vec![Value::str("k"), Value::str(v)]).unwrap();
    }
    let mut c =
        ShardedQualityServer::partition(&t, 4, Box::new(RoundRobinRouter::default())).unwrap();
    c.register_cfds(cfds.clone()).unwrap();
    let sharded = c.detect().unwrap().normalized();
    let single = detect_columnar(&t, &cfds).unwrap().normalized();
    assert_eq!(sharded.len(), 1, "one merged group violation");
    assert_eq!(sharded, single);
    // Each shard was locally clean: the violation only exists merged.
    for s in 0..4 {
        let local = detect_columnar(c.shard_table(s), &cfds).unwrap();
        assert!(local.is_empty(), "shard {s} is clean in isolation");
    }
}

#[test]
fn more_shards_than_rows() {
    let cfds = semandaq::cfd::parse::parse_cfds("r: [A] -> [B]").unwrap();
    let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
    t.insert(vec![Value::str("k"), Value::str("x")]).unwrap();
    t.insert(vec![Value::str("k"), Value::str("y")]).unwrap();
    let mut c =
        ShardedQualityServer::partition(&t, 8, Box::new(RoundRobinRouter::default())).unwrap();
    c.register_cfds(cfds.clone()).unwrap();
    assert_eq!(
        c.detect().unwrap().normalized(),
        detect_columnar(&t, &cfds).unwrap().normalized()
    );
}

#[test]
fn customers_equivalence_at_scale() {
    let d = semandaq::datagen::dirty_customers(2_000, 0.05, 47);
    let t = d.db.table("customer").unwrap();
    let reference = detect_columnar(t, &d.cfds).unwrap().normalized();
    assert!(!reference.is_empty());
    for (shards, key_cols) in [(2usize, vec![]), (5, vec![1]), (8, vec![1, 3])] {
        let mut c = ShardedQualityServer::partition(t, shards, Box::new(HashRouter::new(key_cols)))
            .unwrap();
        c.register_cfds(d.cfds.clone()).unwrap();
        assert_eq!(
            c.detect().unwrap().normalized(),
            reference,
            "{shards} shards"
        );
    }
}
