//! Telemetry invariants: the obs registry's counters must reconcile with
//! the engine's own ground truth. The registry is process-global, so every
//! test here serializes on one mutex and asserts *deltas* across its own
//! workload — concurrent bumps from sibling tests are excluded by the
//! lock, earlier history by the subtraction.

use std::sync::{Mutex, MutexGuard, OnceLock};

use semandaq::cluster::{RoundRobinRouter, ShardedQualityServer};
use semandaq::colstore::{
    detect_cached, detect_columnar, detect_on_snapshot_threads, Snapshot, SnapshotCache,
};
use semandaq::datagen::dirty_customers;
use semandaq::repair::{batch_repair, RepairConfig};

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn cache_hits_plus_misses_equal_detect_calls() {
    let _g = lock();
    let hits = semandaq::obs::counter("colstore_snapshot_cache_hits_total");
    let misses = semandaq::obs::counter("colstore_snapshot_cache_misses_total");
    let (h0, m0) = (hits.get(), misses.get());

    let d = dirty_customers(300, 0.05, 311);
    let t = d.db.table("customer").unwrap();
    let mut cache = SnapshotCache::new();
    const DETECTS: u64 = 5;
    for _ in 0..DETECTS {
        detect_cached(&mut cache, t, &d.cfds).unwrap();
    }

    // Every detect_cached asks the cache for a snapshot exactly once, and
    // every ask is scored as exactly one hit or one miss.
    assert_eq!(
        (hits.get() - h0) + (misses.get() - m0),
        DETECTS,
        "hits + misses == detect calls"
    );
    assert_eq!(misses.get() - m0, 1, "only the cold detect misses");
    assert_eq!(hits.get() - h0, DETECTS - 1);
}

#[test]
fn encode_funnel_counts_cacheless_and_shard_seeding_encodes() {
    let _g = lock();
    let encodes = semandaq::obs::counter("colstore_snapshot_encodes_total");

    // A one-shot detect bypasses every SnapshotCache — no per-instance
    // counter sees it — yet the global funnel still counts its encode.
    let d = dirty_customers(200, 0.05, 312);
    let t = d.db.table("customer").unwrap();
    let e0 = encodes.get();
    detect_columnar(t, &d.cfds).unwrap();
    assert_eq!(encodes.get() - e0, 1, "cacheless detect is one full encode");

    // Cluster shard seeding: the cold scatter encodes each shard once, and
    // the registry's delta agrees with the per-shard cache sum.
    let e1 = encodes.get();
    let mut cluster =
        ShardedQualityServer::partition(t, 3, Box::new(RoundRobinRouter::default())).unwrap();
    cluster.register_cfds(d.cfds.clone()).unwrap();
    cluster.detect().unwrap();
    assert_eq!(encodes.get() - e1, 3, "one seeding encode per shard");
    assert_eq!(cluster.snapshot_encodes(), 3);
    // Steady state: a repeat detect adds no encode anywhere.
    cluster.detect().unwrap();
    assert_eq!(encodes.get() - e1, 3);
}

#[test]
fn cluster_exports_equal_merges_consumed() {
    let _g = lock();
    let exported = semandaq::obs::counter("cluster_partials_exported_total");
    let merged = semandaq::obs::counter("cluster_partials_merged_total");
    let (x0, g0) = (exported.get(), merged.get());

    let d = dirty_customers(250, 0.05, 313);
    let t = d.db.table("customer").unwrap();
    let mut cluster =
        ShardedQualityServer::partition(t, 4, Box::new(RoundRobinRouter::default())).unwrap();
    cluster.register_cfds(d.cfds.clone()).unwrap();
    cluster.detect().unwrap();
    // Mutate one cell so the next detect re-exports a subset, then detect
    // twice more (the second rides the memo entirely).
    let id = t.row_ids()[0];
    let v = t.get(id).unwrap()[2].clone();
    cluster.update_cell(id, 2, v).unwrap();
    cluster.detect().unwrap();
    cluster.detect().unwrap();

    let shipped = exported.get() - x0;
    assert_eq!(
        shipped,
        merged.get() - g0,
        "every exported partial is consumed by exactly one merge"
    );
    // 3 detects × 4 shards × n_cfds partials each (memoized or not, the
    // partial is still shipped and merged).
    assert_eq!(shipped, 3 * 4 * d.cfds.len() as u64);
}

#[test]
fn detect_morsels_equal_chunks_times_variable_cfds() {
    let _g = lock();
    let morsels = semandaq::obs::counter("detect_morsels_total");
    let workers = semandaq::obs::gauge("detect_workers");

    let d = dirty_customers(300, 0.06, 315);
    let t = d.db.table("customer").unwrap();
    let cols: Vec<usize> = (0..t.schema().arity()).collect();
    // 300 rows at 64 rows/chunk → 5 chunks, so the threaded fan-out is
    // taken and the morsel count is fully determined by the layout.
    let snap = Snapshot::projected_with_chunk(t, &cols, 64);
    let n_chunks = snap.n_chunks() as u64;
    assert!(n_chunks >= 2, "layout must produce multiple chunks");
    // Every variable (wild-RHS) CFD contributes one morsel per chunk;
    // constant CFDs are scanned outside the pool.
    let n_vars = d.cfds.iter().filter(|c| c.rhs_pat.is_wild()).count() as u64;
    assert!(n_vars >= 1, "workload must carry variable CFDs");

    let m0 = morsels.get();
    detect_on_snapshot_threads(&snap, &d.cfds, 4).unwrap();
    assert_eq!(
        morsels.get() - m0,
        n_chunks * n_vars,
        "morsels == chunks × variable CFDs"
    );
    assert_eq!(workers.get(), 4, "gauge records the last pool size");
}

/// Pins the `obs::reset()` contract the module-local handle caches rely
/// on: reset zeroes every metric **in place** and never removes or
/// replaces registry entries, so an `Arc` handle cached before the reset
/// (every engine module caches its handles in a `OnceLock` on first use)
/// still feeds the same metric the registry snapshots afterwards. If
/// reset ever swapped entries out, cached handles would keep bumping
/// orphaned atomics and the registry would silently report zeros.
#[test]
fn reset_keeps_cached_module_handles_live() {
    let _g = lock();
    // Cache handles first — stand-ins for the engine's OnceLock caches.
    let counter = semandaq::obs::counter("reset_liveness_probe_total");
    let gauge = semandaq::obs::gauge("reset_liveness_probe");
    counter.add(7);
    gauge.set(7);

    semandaq::obs::reset();
    assert_eq!(counter.get(), 0, "reset zeroes through the cached handle");

    // Bumps through the pre-reset handles must be visible to a fresh
    // registry lookup *and* to the snapshot — same atomics, not orphans.
    counter.inc();
    gauge.set(3);
    assert_eq!(
        semandaq::obs::counter("reset_liveness_probe_total").get(),
        1,
        "re-looked-up handle sees bumps made through the cached one"
    );
    let snap = semandaq::obs::snapshot();
    let c = snap
        .counters
        .iter()
        .find(|(n, _)| n == "reset_liveness_probe_total")
        .expect("reset must not remove registry entries");
    assert_eq!(c.1, 1);
    let g = snap
        .gauges
        .iter()
        .find(|(n, _)| n == "reset_liveness_probe")
        .expect("reset must not remove registry entries");
    assert_eq!(g.1, 3);
}

#[test]
fn repair_round_and_change_counters_match_the_result() {
    let _g = lock();
    let runs = semandaq::obs::counter("repair_runs_total");
    let rounds = semandaq::obs::counter("repair_rounds_total");
    let changes = semandaq::obs::counter("repair_changes_total");
    let (u0, r0, c0) = (runs.get(), rounds.get(), changes.get());

    let d = dirty_customers(200, 0.05, 314);
    let mut db = d.db.clone();
    let result = batch_repair(&mut db, "customer", &d.cfds, &RepairConfig::default()).unwrap();
    assert!(result.residual.is_empty());

    assert_eq!(runs.get() - u0, 1);
    assert_eq!(
        rounds.get() - r0,
        result.iterations as u64,
        "rounds metric == RepairResult iterations"
    );
    assert_eq!(
        changes.get() - c0,
        result.changes.len() as u64,
        "changes metric == change-list length"
    );
}
