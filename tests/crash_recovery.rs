//! Crash-recovery properties of the durability tier (`crates/durable`).
//!
//! The central claim: **a crash is a truncation, and every truncation
//! recovers to a serial prefix.** For a WAL produced by a known mutation
//! script, cutting the file at *every byte boundary* and recovering must
//! yield exactly the state the same backend reaches by applying the
//! longest record prefix that survived the cut — byte-identical rows and
//! detect reports, for the single-node server and the 3-shard cluster
//! alike. No cut may panic, resync past damage, or replay a partial
//! record.
//!
//! Alongside it, the memory-budget acceptance check: detection over a
//! spill-backed snapshot cache with a budget of ~10% of the encoded
//! table must complete and agree byte-for-byte with the unbudgeted run.

use std::path::PathBuf;
use std::sync::Once;

use semandaq::api::{dispatch, Mutation, QualityBackend, Request, Response};
use semandaq::cluster::{HashRouter, ShardedQualityServer};
use semandaq::datagen::{customer::CANONICAL_CFDS, dirty_customers};
use semandaq::durable::{Durable, PagedStore, WAL_FILE};
use semandaq::minidb::{RowId, Value};
use semandaq::system::{QualityServer, ServerConfig};

const ROWS: usize = 48;
const SEED: u64 = 777;

/// Small chunks so the spill machinery actually engages at test scale.
/// Every test sets this before its first colstore call; the process-wide
/// default is read once, so the value must be the same everywhere.
fn small_chunks() {
    static INIT: Once = Once::new();
    INIT.call_once(|| std::env::set_var("SDQ_CHUNK_ROWS", "16"));
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdq_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn single() -> Box<dyn QualityBackend + Send> {
    let w = dirty_customers(ROWS, 0.05, SEED);
    Box::new(QualityServer::new(w.db, "customer").unwrap())
}

fn cluster() -> Box<dyn QualityBackend + Send> {
    let w = dirty_customers(ROWS, 0.05, SEED);
    Box::new(
        ShardedQualityServer::partition(
            w.db.table("customer").unwrap(),
            3,
            Box::new(HashRouter::new(vec![1])),
        )
        .unwrap(),
    )
}

/// A schema-valid row with one column overridden — mutation fodder.
fn donor_row(col: usize, v: &str) -> Vec<Value> {
    let w = dirty_customers(ROWS, 0.05, SEED);
    let mut row: Vec<Value> =
        w.db.table("customer")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .1
            .to_vec();
    row[col] = Value::str(v);
    row
}

/// The mutation script: every kind of logged record, all successful (so
/// `records_replayed` maps 1:1 onto script prefixes), including a
/// WAL-hostile embedded newline.
fn script() -> Vec<Request> {
    vec![
        Request::RegisterCfds {
            text: CANONICAL_CFDS.to_string(),
        },
        Request::Insert {
            row: donor_row(2, "FIRST"),
        },
        Request::Insert {
            row: donor_row(2, "TWO\nLINES"),
        },
        Request::UpdateCell {
            row: RowId(0),
            col: 2,
            value: Value::str("ELSEWHERE"),
        },
        Request::ApplyBatch {
            batch: vec![
                Mutation::Insert(donor_row(3, "00000")),
                Mutation::SetCell {
                    row: RowId(1),
                    col: 1,
                    value: Value::str("01"),
                },
                Mutation::Delete(RowId(2)),
            ]
            .into(),
        },
        // Drop the first scripted insert (RowId continues past the seed).
        Request::Delete {
            row: RowId(ROWS as u64),
        },
        Request::Insert {
            row: donor_row(2, "LAST"),
        },
    ]
}

/// Exported rows + encoded detect report: total observable state.
type Fingerprint = (Vec<(RowId, Vec<Value>)>, String);

fn fingerprint(b: &mut dyn QualityBackend) -> Fingerprint {
    let rows = b.export_rows().expect("backend exports");
    let detect = dispatch(b, Request::Detect).encode();
    (rows, detect)
}

/// The property itself, generic over the backend under recovery.
fn every_cut_recovers_a_serial_prefix(mk: fn() -> Box<dyn QualityBackend + Send>, tag: &str) {
    small_chunks();
    let reqs = script();

    // Full run through the log.
    let full_dir = tmp(&format!("{tag}_full"));
    let mut d = Durable::open(&full_dir, mk()).unwrap();
    for r in &reqs {
        let resp = dispatch(&mut d, r.clone());
        assert!(
            !matches!(resp, Response::Error { .. }),
            "script must apply cleanly: {r:?} -> {resp:?}"
        );
    }
    let wal = std::fs::read(full_dir.join(WAL_FILE)).unwrap();
    drop(d);

    // Serial reference state after each script prefix.
    let refs: Vec<Fingerprint> = (0..=reqs.len())
        .map(|k| {
            let mut b = mk();
            for r in &reqs[..k] {
                dispatch(b.as_mut(), r.clone());
            }
            fingerprint(b.as_mut())
        })
        .collect();

    let cut_dir = tmp(&format!("{tag}_cut"));
    let mut last_k = 0usize;
    for cut in 0..=wal.len() {
        std::fs::write(cut_dir.join(WAL_FILE), &wal[..cut]).unwrap();
        let mut d = Durable::open(&cut_dir, mk())
            .unwrap_or_else(|e| panic!("cut at {cut}/{} must recover: {e}", wal.len()));
        let k = d.recovery().records_replayed;
        assert!(
            k == last_k || k == last_k + 1,
            "cut={cut}: replayed {k} after {last_k} — a cut can only complete one record"
        );
        assert_eq!(
            d.inner().export_rows().unwrap(),
            refs[k].0,
            "cut={cut}: recovered rows must match the {k}-record serial prefix"
        );
        // Detect reports are compared once per distinct prefix (the rows
        // above are compared at every single cut).
        if k != last_k || cut == wal.len() {
            let got = dispatch(&mut d, Request::Detect).encode();
            assert_eq!(got, refs[k].1, "cut={cut}: detect after {k} records");
        }
        last_k = k;
    }
    assert_eq!(last_k, reqs.len(), "the uncut log replays every record");

    // Post-recovery id allocation matches the never-crashed run: the next
    // insert gets the same id both ways (tombstones included).
    let mut recovered = Durable::open(&cut_dir, mk()).unwrap();
    let mut serial = mk();
    for r in &reqs {
        dispatch(serial.as_mut(), r.clone());
    }
    let probe = donor_row(2, "PROBE");
    assert_eq!(
        recovered.insert(probe.clone()).unwrap(),
        serial.insert(probe).unwrap(),
        "id allocation diverged after recovery"
    );

    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&cut_dir);
}

#[test]
fn single_node_recovers_every_byte_truncation() {
    every_cut_recovers_a_serial_prefix(single, "single");
}

#[test]
fn three_shard_cluster_recovers_every_byte_truncation() {
    every_cut_recovers_a_serial_prefix(cluster, "cluster");
}

/// Acceptance: detection completes — and agrees byte-for-byte — with a
/// spill budget of ~10% of the encoded table, on both backends.
#[test]
fn detect_under_ten_percent_memory_budget_matches_unbudgeted() {
    small_chunks();
    const BIG: usize = 400;
    let w = || dirty_customers(BIG, 0.05, SEED);
    // ~4 bytes per encoded cell; 10% of that is the budget.
    let cols = w().db.table("customer").unwrap().schema().arity();
    let budget = (BIG * cols * 4) / 10;

    let reference = |mut b: Box<dyn QualityBackend + Send>| -> String {
        b.register_cfds(CANONICAL_CFDS).unwrap();
        dispatch(b.as_mut(), Request::Detect).encode()
    };
    let want = reference(Box::new(QualityServer::new(w().db, "customer").unwrap()));

    // Single node, spilling to a real paged file.
    let dir = tmp("budget");
    let store = PagedStore::create(&dir.join("spill.pages"), 16, 2).unwrap();
    let config = ServerConfig {
        mem_budget: Some(budget),
        spill_store: Some(store as _),
        ..Default::default()
    };
    let mut qs = QualityServer::new(w().db, "customer")
        .unwrap()
        .with_config(config);
    QualityBackend::register_cfds(&mut qs, CANONICAL_CFDS).unwrap();
    assert_eq!(dispatch(&mut qs, Request::Detect).encode(), want);
    assert!(
        qs.spilled_chunks() > 0,
        "the budget must actually force evictions"
    );

    // 3-shard cluster sharing one store.
    let store = PagedStore::create(&dir.join("spill_cluster.pages"), 16, 2).unwrap();
    let mut cl = ShardedQualityServer::partition(
        w().db.table("customer").unwrap(),
        3,
        Box::new(HashRouter::new(vec![1])),
    )
    .unwrap()
    .with_spill(store, budget);
    QualityBackend::register_cfds(&mut cl, CANONICAL_CFDS).unwrap();
    assert_eq!(dispatch(&mut cl, Request::Detect).encode(), want);
    assert!(cl.spilled_chunks() > 0, "cluster shards spill too");
    let _ = std::fs::remove_dir_all(&dir);
}
