//! Property: the three detection engines (generated SQL on the embedded
//! engine, native hash-based, parallel) compute identical violation sets on
//! arbitrary instances — the SQL code path is exactly the CFD semantics.

mod common;

use common::{arb_cfds, arb_table, db_with};
use proptest::prelude::*;
use semandaq::detect::{detect_native, detect_parallel, detect_sql};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sql_equals_native_on_random_instances(
        table in arb_table(40),
        cfds in arb_cfds(),
    ) {
        let native = detect_native(&table, &cfds).unwrap().normalized();
        let mut db = db_with(table);
        let sql = detect_sql(&mut db, "r", &cfds).unwrap().normalized();
        prop_assert_eq!(native, sql);
    }

    #[test]
    fn parallel_equals_native_on_random_instances(
        table in arb_table(40),
        cfds in arb_cfds(),
        threads in 1usize..6,
    ) {
        let native = detect_native(&table, &cfds).unwrap().normalized();
        let par = detect_parallel(&table, &cfds, threads).unwrap().normalized();
        prop_assert_eq!(native, par);
    }

    #[test]
    fn per_pattern_sql_equals_merged_sql(
        table in arb_table(30),
        cfds in arb_cfds(),
    ) {
        let mut db = db_with(table);
        let merged = detect_sql(&mut db, "r", &cfds).unwrap().normalized();
        let per_pat = semandaq::detect::detect_sql_per_pattern(&mut db, "r", &cfds)
            .unwrap()
            .normalized();
        prop_assert_eq!(merged, per_pat);
    }

    #[test]
    fn vio_tallies_are_consistent_with_violations(
        table in arb_table(40),
        cfds in arb_cfds(),
    ) {
        let report = detect_native(&table, &cfds).unwrap();
        // vio(t) > 0 iff t appears in some violation.
        let mut involved: std::collections::HashSet<_> = Default::default();
        for v in &report.violations {
            for r in v.rows() {
                involved.insert(r);
            }
        }
        for (&row, &vio) in &report.vio {
            prop_assert_eq!(vio > 0, involved.contains(&row));
        }
        for r in &involved {
            prop_assert!(report.vio_of(*r) > 0);
        }
    }

    #[test]
    fn detection_is_monotone_under_tuple_removal(
        table in arb_table(25),
        cfds in arb_cfds(),
    ) {
        // Removing a tuple never *creates* violations for the remaining
        // tuples: the remaining violation set is a subset w.r.t. rows.
        let before = detect_native(&table, &cfds).unwrap();
        let mut smaller = table.clone();
        let Some(victim) = smaller.row_ids().into_iter().next() else {
            return Ok(());
        };
        smaller.delete(victim).unwrap();
        let after = detect_native(&smaller, &cfds).unwrap();
        // Every violation in `after` must correspond to a violation in
        // `before` once the victim is ignored (groups can only shrink).
        for v in &after.violations {
            let rows_after = v.rows();
            let matched = before.violations.iter().any(|w| {
                w.cfd_idx == v.cfd_idx
                    && rows_after.iter().all(|r| w.rows().contains(r))
            });
            prop_assert!(matched, "violation appeared out of nowhere: {v:?}");
        }
    }
}

#[test]
fn customers_equivalence_at_scale() {
    let d = semandaq::datagen::dirty_customers(2_000, 0.05, 11);
    let t = d.db.table("customer").unwrap();
    let native = detect_native(t, &d.cfds).unwrap().normalized();
    let par = detect_parallel(t, &d.cfds, 8).unwrap().normalized();
    assert_eq!(native, par);
    let mut db = d.db.clone();
    let sql = detect_sql(&mut db, "customer", &d.cfds).unwrap().normalized();
    assert_eq!(native, sql);
}
