//! Property: the four detection engines (generated SQL on the embedded
//! engine, native hash-based, parallel, columnar) compute identical
//! violation sets on arbitrary instances — every code path is exactly the
//! CFD semantics.

mod common;

use common::{arb_cfds, arb_table, db_with};
use proptest::prelude::*;
use semandaq::colstore::detect_columnar;
use semandaq::detect::{detect_native, detect_parallel, detect_sql};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sql_equals_native_on_random_instances(
        table in arb_table(40),
        cfds in arb_cfds(),
    ) {
        let native = detect_native(&table, &cfds).unwrap().normalized();
        let mut db = db_with(table);
        let sql = detect_sql(&mut db, "r", &cfds).unwrap().normalized();
        prop_assert_eq!(native, sql);
    }

    #[test]
    fn parallel_equals_native_on_random_instances(
        table in arb_table(40),
        cfds in arb_cfds(),
        threads in 1usize..6,
    ) {
        let native = detect_native(&table, &cfds).unwrap().normalized();
        let par = detect_parallel(&table, &cfds, threads).unwrap().normalized();
        prop_assert_eq!(native, par);
    }

    #[test]
    fn columnar_equals_native_on_random_instances(
        table in arb_table(40),
        cfds in arb_cfds(),
    ) {
        let native = detect_native(&table, &cfds).unwrap().normalized();
        let col = detect_columnar(&table, &cfds).unwrap().normalized();
        prop_assert_eq!(native, col);
    }

    #[test]
    fn all_four_engines_agree(
        table in arb_table(30),
        cfds in arb_cfds(),
    ) {
        let native = detect_native(&table, &cfds).unwrap().normalized();
        let par = detect_parallel(&table, &cfds, 4).unwrap().normalized();
        let col = detect_columnar(&table, &cfds).unwrap().normalized();
        let mut db = db_with(table);
        let sql = detect_sql(&mut db, "r", &cfds).unwrap().normalized();
        prop_assert_eq!(&native, &sql);
        prop_assert_eq!(&native, &par);
        prop_assert_eq!(&native, &col);
    }

    #[test]
    fn per_pattern_sql_equals_merged_sql(
        table in arb_table(30),
        cfds in arb_cfds(),
    ) {
        let mut db = db_with(table);
        let merged = detect_sql(&mut db, "r", &cfds).unwrap().normalized();
        let per_pat = semandaq::detect::detect_sql_per_pattern(&mut db, "r", &cfds)
            .unwrap()
            .normalized();
        prop_assert_eq!(merged, per_pat);
    }

    #[test]
    fn vio_tallies_are_consistent_with_violations(
        table in arb_table(40),
        cfds in arb_cfds(),
    ) {
        let report = detect_native(&table, &cfds).unwrap();
        // vio(t) > 0 iff t appears in some violation.
        let mut involved: std::collections::HashSet<_> = Default::default();
        for v in &report.violations {
            for r in v.rows() {
                involved.insert(r);
            }
        }
        for (row, vio) in report.vio.iter() {
            prop_assert_eq!(vio > 0, involved.contains(&row));
        }
        for r in &involved {
            prop_assert!(report.vio_of(*r) > 0);
        }
    }

    #[test]
    fn detection_is_monotone_under_tuple_removal(
        table in arb_table(25),
        cfds in arb_cfds(),
    ) {
        // Removing a tuple never *creates* violations for the remaining
        // tuples: the remaining violation set is a subset w.r.t. rows.
        let before = detect_native(&table, &cfds).unwrap();
        let mut smaller = table.clone();
        let Some(victim) = smaller.row_ids().into_iter().next() else {
            return Ok(());
        };
        smaller.delete(victim).unwrap();
        let after = detect_native(&smaller, &cfds).unwrap();
        // Every violation in `after` must correspond to a violation in
        // `before` once the victim is ignored (groups can only shrink).
        for v in &after.violations {
            let rows_after = v.rows();
            let matched = before.violations.iter().any(|w| {
                w.cfd_idx == v.cfd_idx
                    && rows_after.iter().all(|r| w.rows().contains(r))
            });
            prop_assert!(matched, "violation appeared out of nowhere: {v:?}");
        }
    }
}

#[test]
fn customers_equivalence_at_scale() {
    let d = semandaq::datagen::dirty_customers(2_000, 0.05, 11);
    let t = d.db.table("customer").unwrap();
    let native = detect_native(t, &d.cfds).unwrap().normalized();
    let par = detect_parallel(t, &d.cfds, 8).unwrap().normalized();
    assert_eq!(native, par);
    let col = detect_columnar(t, &d.cfds).unwrap().normalized();
    assert_eq!(native, col);
    let mut db = d.db.clone();
    let sql = detect_sql(&mut db, "customer", &d.cfds)
        .unwrap()
        .normalized();
    assert_eq!(native, sql);
}

/// Edge case: every cell NULL. Constants never match NULL, wildcards do;
/// NULL RHS members are invisible to COUNT(DISTINCT) — so nothing violates,
/// on every engine.
#[test]
fn all_null_instance_is_clean_on_every_engine() {
    use semandaq::minidb::{Schema, Table, Value};
    let mut t = Table::new("r", Schema::of_strings(&common::COLS));
    for _ in 0..8 {
        t.insert(vec![Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
    }
    let cfds = common::cfd_pool();
    let native = detect_native(&t, &cfds).unwrap();
    assert!(
        native.is_empty(),
        "all-NULL data cannot violate: {native:?}"
    );
    let col = detect_columnar(&t, &cfds).unwrap().normalized();
    let par = detect_parallel(&t, &cfds, 4).unwrap().normalized();
    let mut db = db_with(t);
    let sql = detect_sql(&mut db, "r", &cfds).unwrap().normalized();
    let native = native.normalized();
    assert_eq!(native, col);
    assert_eq!(native, par);
    assert_eq!(native, sql);
}

/// Edge case: the whole table is one LHS group (single-valued LHS columns),
/// first agreeing and then with one dissenting RHS.
#[test]
fn single_row_group_edge_case_on_every_engine() {
    use semandaq::minidb::{Schema, Table, Value};
    let cfds = semandaq::cfd::parse::parse_cfds("r: [A] -> [B]").unwrap();
    let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
    // One row: a group of one can never violate a variable CFD.
    t.insert(vec![Value::str("k"), Value::str("v")]).unwrap();
    for engine_report in [
        detect_native(&t, &cfds).unwrap(),
        detect_columnar(&t, &cfds).unwrap(),
        detect_parallel(&t, &cfds, 2).unwrap(),
    ] {
        assert!(engine_report.is_empty(), "singleton group must be clean");
    }
    // Grow the single group until it disagrees: all engines see one
    // violation covering exactly the non-NULL members.
    t.insert(vec![Value::str("k"), Value::str("v")]).unwrap();
    t.insert(vec![Value::str("k"), Value::Null]).unwrap();
    t.insert(vec![Value::str("k"), Value::str("w")]).unwrap();
    let native = detect_native(&t, &cfds).unwrap().normalized();
    assert_eq!(native.len(), 1);
    let col = detect_columnar(&t, &cfds).unwrap().normalized();
    let par = detect_parallel(&t, &cfds, 2).unwrap().normalized();
    let mut db = db_with(t);
    let sql = detect_sql(&mut db, "r", &cfds).unwrap().normalized();
    assert_eq!(native, col);
    assert_eq!(native, par);
    assert_eq!(native, sql);
}
