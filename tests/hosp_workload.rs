//! Second-schema validation: the whole pipeline on the HOSP-style
//! workload — nothing in the system is customer-schema specific.

use semandaq::datagen::{generate_hosp, hosp_cfds, inject_noise, HospConfig, NoiseConfig};
use semandaq::detect::{detect_native, detect_sql};
use semandaq::discovery::{discover_fds, mine_constant_cfds, MinerConfig, TaneConfig};
use semandaq::minidb::Database;
use semandaq::repair::{batch_repair, RepairConfig};
use semandaq::system::{QualityServer, ServerConfig};

fn dirty_hosp(rows: usize, noise: f64, seed: u64) -> (Database, Vec<semandaq::cfd::Cfd>) {
    let mut t = generate_hosp(&HospConfig {
        rows,
        providers: rows / 8,
        seed,
    });
    // Corrupt the dependent attributes (not the provider key itself).
    inject_noise(
        &mut t,
        &NoiseConfig {
            rate: noise,
            typo_fraction: 0.3,
            columns: vec![1, 2, 3, 4, 5, 7],
            seed: seed ^ 0xB0B,
        },
    );
    let mut db = Database::new();
    db.register_table(t);
    (db, hosp_cfds())
}

#[test]
fn hosp_detect_and_repair_roundtrip() {
    let (db, cfds) = dirty_hosp(600, 0.04, 9);
    let mut server = QualityServer::new(db, "hosp").unwrap();
    server.engine_mut().register(cfds).unwrap();
    let report = server.detect().unwrap();
    assert!(!report.is_empty(), "noise must violate the HOSP CFDs");
    let result = server.repair().unwrap();
    assert!(result.residual.is_empty());
    assert!(server.detect().unwrap().is_empty());
}

#[test]
fn hosp_sql_equals_native() {
    let (mut db, cfds) = dirty_hosp(400, 0.05, 10);
    let native = detect_native(db.table("hosp").unwrap(), &cfds)
        .unwrap()
        .normalized();
    let sql = detect_sql(&mut db, "hosp", &cfds).unwrap().normalized();
    assert_eq!(native, sql);
}

#[test]
fn hosp_discovery_finds_the_dictionary() {
    let clean = generate_hosp(&HospConfig {
        rows: 1200,
        providers: 120,
        seed: 11,
    });
    let fds = discover_fds(&clean, &TaneConfig::default());
    // MEASURE → CONDITION must be discovered as a minimal FD.
    assert!(
        fds.iter().any(|d| d.g3 == 0.0
            && d.fd.rhs == "CONDITION"
            && d.fd.lhs == vec!["MEASURE".to_string()]),
        "{fds:?}"
    );
    // ZIP → STATE as well.
    assert!(fds
        .iter()
        .any(|d| d.fd.rhs == "STATE" && d.fd.lhs == vec!["ZIP".to_string()]));
    // Constant mining recovers dictionary entries like AMI-1 → Heart Attack.
    let consts = mine_constant_cfds(
        &clean,
        &MinerConfig {
            min_support: 50,
            max_lhs: 1,
            relation: "hosp".into(),
        },
    );
    assert!(consts.iter().any(|d| {
        d.cfd.rhs == "CONDITION"
            && d.cfd.to_string().contains("AMI-1")
            && d.cfd.to_string().contains("Heart Attack")
    }));
}

#[test]
fn hosp_audit_has_sane_classes() {
    // Noise on HOSPITAL only: the measure-dictionary groups stay clean, so
    // violation-free rows matching a constant rule can reach "verified".
    // (With noise on CONDITION, the ~80-row measure groups each get hit and
    // every member becomes at best "arguably clean" — the taxonomy working
    // as the paper defines it.)
    let mut t = generate_hosp(&HospConfig {
        rows: 500,
        providers: 60,
        seed: 12,
    });
    inject_noise(
        &mut t,
        &NoiseConfig {
            rate: 0.05,
            typo_fraction: 0.3,
            columns: vec![1], // HOSPITAL only
            seed: 99,
        },
    );
    let mut db = Database::new();
    db.register_table(t);
    let mut server = QualityServer::new(db, "hosp")
        .unwrap()
        .with_config(ServerConfig::default());
    server.engine_mut().register(hosp_cfds()).unwrap();
    let audit = server.audit().unwrap();
    assert_eq!(audit.tuples, 500);
    assert!(audit.dirty_fraction() > 0.0);
    // Verified-clean tuples exist: dictionary rules (AMI-1/HF-1/PN-1)
    // positively vouch for violation-free rows carrying those measures.
    assert!(audit.tuple_classes[0] > 0, "{:?}", audit.tuple_classes);
    // And every class total sums to the table size.
    assert_eq!(audit.tuple_classes.iter().sum::<usize>(), 500);
}

#[test]
fn hosp_repair_respects_provider_key_semantics() {
    // A provider with one corrupted PHONE observation: the majority of the
    // provider's observations must win.
    let mut t = generate_hosp(&HospConfig {
        rows: 400,
        providers: 20, // ~20 observations per provider
        seed: 13,
    });
    // Corrupt a single PHONE cell.
    let victim = t.iter().next().map(|(id, _)| id).unwrap();
    let good_phone = t.get(victim).unwrap()[5].clone();
    t.update_cell(victim, 5, semandaq::minidb::Value::str("000-0000"))
        .unwrap();
    let mut db = Database::new();
    db.register_table(t);
    let cfds = hosp_cfds();
    let result = batch_repair(&mut db, "hosp", &cfds, &RepairConfig::default()).unwrap();
    assert!(result.residual.is_empty());
    let fixed = db.table("hosp").unwrap().get(victim).unwrap();
    assert!(
        fixed[5].strong_eq(&good_phone),
        "majority observation must restore the phone: {:?}",
        fixed[5]
    );
}
