//! Shared helpers for the cross-crate integration tests: random instances
//! and CFD pools for property-based testing.

// Each integration-test binary compiles this module independently and uses
// a different subset of helpers; silence per-binary dead-code noise.
#![allow(dead_code)]

use proptest::prelude::*;
use semandaq::cfd::{parse::parse_cfds, Cfd};
use semandaq::minidb::{Database, Schema, Table, Value};

/// Columns of the random test relation.
pub const COLS: [&str; 4] = ["A", "B", "C", "D"];

/// A pool of CFDs over the test relation covering the interesting shapes:
/// plain FDs, conditional variable CFDs, constant rules, empty-condition
/// rules and multi-attribute LHS.
pub fn cfd_pool() -> Vec<Cfd> {
    parse_cfds(
        "r: [A] -> [B]\n\
         r: [A, B] -> [C]\n\
         r: [B] -> [D]\n\
         r: [A='a0'] -> [B=_]\n\
         r: [A='a1', C=_] -> [D=_]\n\
         r: [A='a0'] -> [C='c0']\n\
         r: [B='b1'] -> [D='d1']\n\
         r: [C='c2', D='d0'] -> [B='b0']\n\
         r: [D=_] -> [A=_]",
    )
    .expect("pool parses")
}

/// Strategy: a random table over [`COLS`] with small value domains (to
/// force group collisions) and occasional NULLs.
pub fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    let cell = prop_oneof![
        4 => (0usize..3).prop_map(|i| format!("a{i}")),
        1 => Just("NULL".to_string()),
    ];
    let row = proptest::collection::vec(cell, 4);
    proptest::collection::vec(row, 1..max_rows).prop_map(|rows| {
        let mut t = Table::new("r", Schema::of_strings(&COLS));
        for (rid, r) in rows.into_iter().enumerate() {
            let vals: Vec<Value> = r
                .into_iter()
                .enumerate()
                .map(|(c, s)| {
                    if s == "NULL" {
                        Value::Null
                    } else {
                        // Make values column-specific so constants in the
                        // pool ('a0', 'b1', …) can actually match.
                        let col_letter = ["a", "b", "c", "d"][c];
                        let digit = &s[1..];
                        Value::str(format!("{col_letter}{digit}"))
                    }
                })
                .collect();
            let _ = rid;
            t.insert(vals).expect("row fits schema");
        }
        t
    })
}

/// Strategy: a non-empty random subset of the CFD pool.
pub fn arb_cfds() -> impl Strategy<Value = Vec<Cfd>> {
    let pool = cfd_pool();
    let n = pool.len();
    proptest::collection::vec(0usize..n, 1..=n).prop_map(move |idxs| {
        let mut out = Vec::new();
        for i in idxs {
            if !out.contains(&pool[i]) {
                out.push(pool[i].clone());
            }
        }
        out
    })
}

/// Wrap a table in a database under its own name.
#[allow(dead_code)] // each integration-test binary uses a different subset
pub fn db_with(table: Table) -> Database {
    let mut db = Database::new();
    db.register_table(table);
    db
}
