//! Property: chunked, morsel-parallel detection ≡ the reference detector.
//!
//! The chunk layout (sealed code chunks + mutable tail) and the worker
//! count are pure execution knobs — no combination of chunk size × thread
//! count × mutation history may change a `normalized()` report. The sweeps
//! here run chunk sizes {1, 7, 64, 4096} (1 maximizes chunk boundaries,
//! 4096 is the default single-chunk layout for small tables) against
//! thread counts {1, 2, 4} (1 pins the exact serial path), over random
//! instances, random update streams, and the structural edges: a group
//! split across chunks, an all-NULL chunk, and an exactly-full tail.
//! Sharded repair under threading closes the loop: the cluster pool and
//! the single-node pool must drive byte-identical change lists.

mod common;

use common::{arb_cfds, arb_table, db_with};
use proptest::prelude::*;
use semandaq::cfd::Cfd;
use semandaq::cluster::{RoundRobinRouter, ShardedQualityServer};
use semandaq::colstore::{
    detect_cached_threads, detect_on_snapshot_threads, Snapshot, SnapshotCache,
};
use semandaq::detect::detect_native;
use semandaq::minidb::{RowId, Schema, Table, Value};
use semandaq::repair::{batch_repair, RepairConfig};

const CHUNK_SIZES: [usize; 4] = [1, 7, 64, 4096];
const THREADS: [usize; 3] = [1, 2, 4];

/// Every chunk size × thread count yields the reference report.
fn assert_all_layouts_match(table: &Table, cfds: &[Cfd]) {
    let reference = detect_native(table, cfds).unwrap().normalized();
    let cols: Vec<usize> = (0..table.schema().arity()).collect();
    for chunk in CHUNK_SIZES {
        let snap = Snapshot::projected_with_chunk(table, &cols, chunk);
        for threads in THREADS {
            let got = detect_on_snapshot_threads(&snap, cfds, threads)
                .unwrap()
                .normalized();
            assert_eq!(
                got, reference,
                "chunk_rows={chunk} threads={threads} diverged from the reference"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chunked_threaded_detection_equals_reference(
        table in arb_table(48),
        cfds in arb_cfds(),
    ) {
        assert_all_layouts_match(&table, &cfds);
    }

    /// A random update stream against a chunk-pinned [`SnapshotCache`]:
    /// after every mutation the patched snapshot's threaded detect must
    /// equal the reference over the table's current rows — inserts that
    /// grow the tail, deletes that swap-remove across chunk boundaries,
    /// and cell writes that re-encode inside sealed chunks.
    #[test]
    fn cached_chunked_detect_tracks_random_update_streams(
        table in arb_table(32),
        cfds in arb_cfds(),
        ops in proptest::collection::vec((0usize..3, 0usize..64, 0usize..4, 0usize..4), 1..24),
        chunk_idx in 0usize..CHUNK_SIZES.len(),
        thread_idx in 0usize..THREADS.len(),
    ) {
        let chunk = CHUNK_SIZES[chunk_idx];
        let threads = THREADS[thread_idx];
        let mut table = table;
        let mut cache = SnapshotCache::new().with_chunk_rows(chunk);
        // Warm the cache so the stream exercises the patch paths.
        detect_cached_threads(&mut cache, &table, &cfds, threads).unwrap();
        for (kind, row_sel, col, val) in ops {
            let ids = table.row_ids();
            match kind {
                0 => {
                    let row: Vec<Value> = (0..4)
                        .map(|c| Value::str(format!("{}{}", ["a", "b", "c", "d"][c], (val + c) % 4)))
                        .collect();
                    let id = table.insert(row).unwrap();
                    cache.note_insert(&table, id);
                }
                1 if !ids.is_empty() => {
                    let id = ids[row_sel % ids.len()];
                    table.delete(id).unwrap();
                    cache.note_delete(&table, id);
                }
                _ if !ids.is_empty() => {
                    let id = ids[row_sel % ids.len()];
                    let v = Value::str(format!("{}{}", ["a", "b", "c", "d"][col], val));
                    table.update_cell(id, col, v).unwrap();
                    cache.note_set_cell(&table, id, col);
                }
                _ => {}
            }
            let got = detect_cached_threads(&mut cache, &table, &cfds, threads)
                .unwrap()
                .normalized();
            let reference = detect_native(&table, &cfds).unwrap().normalized();
            prop_assert_eq!(got, reference, "chunk_rows={} threads={}", chunk, threads);
        }
    }
}

/// One violating group whose members land in distinct chunks
/// (`chunk_rows = 1`): the per-chunk partials each see a single member, so
/// only the exchange merge can assemble the conflict.
#[test]
fn group_split_across_chunks_is_still_one_violation() {
    let cfds = semandaq::cfd::parse::parse_cfds("r: [A] -> [B]").unwrap();
    let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
    for v in ["x", "x", "y", "x"] {
        t.insert(vec![Value::str("k"), Value::str(v)]).unwrap();
    }
    let snap = Snapshot::projected_with_chunk(&t, &[0, 1], 1);
    assert_eq!(snap.n_chunks(), 4, "one row per chunk");
    for threads in THREADS {
        let report = detect_on_snapshot_threads(&snap, &cfds, threads).unwrap();
        assert_eq!(report.len(), 1, "threads={threads}");
    }
    assert_all_layouts_match(&t, &cfds);
}

/// A sealed chunk consisting entirely of NULL rows: NULL never violates,
/// never groups, and must not confuse the per-chunk grouping sentinels.
#[test]
fn all_null_chunk_contributes_nothing() {
    let cfds = common::cfd_pool();
    let mut t = Table::new("r", Schema::of_strings(&common::COLS));
    for i in 0..4 {
        t.insert(vec![
            Value::str("a0"),
            Value::str(format!("b{i}")),
            Value::str("c0"),
            Value::str("d0"),
        ])
        .unwrap();
    }
    for _ in 0..8 {
        t.insert(vec![Value::Null, Value::Null, Value::Null, Value::Null])
            .unwrap();
    }
    for i in 0..4 {
        t.insert(vec![
            Value::str("a1"),
            Value::str("b0"),
            Value::str("c1"),
            Value::str(format!("d{i}")),
        ])
        .unwrap();
    }
    // chunk_rows = 4 seals the middle 8 NULL rows into two all-NULL chunks.
    let snap = Snapshot::projected_with_chunk(&t, &[0, 1, 2, 3], 4);
    assert_eq!(snap.n_chunks(), 4);
    assert_all_layouts_match(&t, &cfds);
}

/// Row count an exact multiple of the chunk size: every chunk is sealed
/// and the tail is empty — the `n_chunks` arithmetic and the morsel spans
/// must not invent a phantom tail chunk.
#[test]
fn exactly_full_chunks_leave_an_empty_tail() {
    let cfds = semandaq::cfd::parse::parse_cfds("r: [A] -> [B]").unwrap();
    let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
    for i in 0..21 {
        t.insert(vec![
            Value::str(format!("k{}", i % 3)),
            Value::str(format!("v{}", i % 2)),
        ])
        .unwrap();
    }
    let snap = Snapshot::projected_with_chunk(&t, &[0, 1], 7);
    assert_eq!(snap.n_chunks(), 3, "21 rows at 7/chunk: sealed, no tail");
    assert_all_layouts_match(&t, &cfds);
}

/// Sharded repair under threading: the cluster's pooled scatter and the
/// single-node morsel pool must drive byte-identical repairs — change
/// lists, costs, iteration counts.
#[test]
fn sharded_repair_equals_single_node_under_threading() {
    let d = semandaq::datagen::dirty_customers(400, 0.06, 77);
    let table = d.db.table("customer").unwrap();
    let cfg = RepairConfig {
        threads: Some(4),
        ..RepairConfig::default()
    };
    let mut db = db_with(table.clone());
    let single = batch_repair(&mut db, "customer", &d.cfds, &cfg).unwrap();
    assert!(single.residual.is_empty());

    let mut cluster =
        ShardedQualityServer::partition(table, 4, Box::new(RoundRobinRouter::default()))
            .unwrap()
            .with_detect_threads(4)
            .with_delta_threshold(0.5);
    cluster.register_cfds(d.cfds.clone()).unwrap();
    let sharded = cluster.repair_with_config(&cfg).unwrap();
    assert!(sharded.residual.is_empty());
    assert_eq!(sharded.changes, single.changes, "identical change lists");
    assert_eq!(sharded.iterations, single.iterations);

    let merged = cluster.merged_table().unwrap();
    let mut merged_rows: Vec<(RowId, Vec<Value>)> =
        merged.iter().map(|(id, r)| (id, r.to_vec())).collect();
    merged_rows.sort_by_key(|(id, _)| *id);
    let mut single_rows: Vec<(RowId, Vec<Value>)> = db
        .table("customer")
        .unwrap()
        .iter()
        .map(|(id, r)| (id, r.to_vec()))
        .collect();
    single_rows.sort_by_key(|(id, _)| *id);
    assert_eq!(merged_rows, single_rows, "repaired relations equal");
}
